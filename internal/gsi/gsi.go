// Package gsi implements the Grid Security Infrastructure used by Grid3:
// a certificate authority, user/host identity certificates, short-lived
// proxy certificates, chain validation, and grid-mapfiles.
//
// The paper (§5.1) installs "The Globus Toolkit's Grid security
// infrastructure (GSI), GRAM, and GridFTP services" at every site. Here GSI
// is realized with real ed25519 signatures over a compact certificate
// encoding, preserving the properties the rest of the stack depends on:
// unforgeable identity assertions, delegation via proxies with bounded
// lifetime, and DN-based authorization through grid-mapfiles.
package gsi

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Errors returned by chain validation and authorization.
var (
	ErrExpired          = errors.New("gsi: certificate expired")
	ErrNotYetValid      = errors.New("gsi: certificate not yet valid")
	ErrBadSignature     = errors.New("gsi: signature verification failed")
	ErrUntrustedIssuer  = errors.New("gsi: issuer is not a trusted CA")
	ErrNotCA            = errors.New("gsi: issuer certificate is not a CA")
	ErrProxyDepth       = errors.New("gsi: proxy chain too deep")
	ErrProxyOutlives    = errors.New("gsi: proxy outlives its signer")
	ErrProxySubject     = errors.New("gsi: proxy subject must extend signer subject")
	ErrNotAuthorized    = errors.New("gsi: subject not in grid-mapfile")
	ErrMalformedGridmap = errors.New("gsi: malformed grid-mapfile line")
)

// MaxProxyDepth bounds delegation chains (user proxy, then one level of
// delegated proxy, as Condor-G's GridManager performs).
const MaxProxyDepth = 4

// Certificate is a signed binding between a distinguished name and a public
// key. Proxy certificates additionally carry the Proxy flag and extend their
// signer's subject with a "/CN=proxy" component, mirroring GSI legacy
// proxies.
type Certificate struct {
	Subject   string
	Issuer    string
	PublicKey ed25519.PublicKey
	NotBefore time.Time
	NotAfter  time.Time
	IsCA      bool
	IsProxy   bool
	Serial    uint64
	Signature []byte // issuer's signature over the TBS encoding
}

// tbsBytes is the deterministic to-be-signed encoding.
func (c *Certificate) tbsBytes() []byte {
	var buf bytes.Buffer
	writeString := func(s string) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(s)))
		buf.Write(n[:])
		buf.WriteString(s)
	}
	writeString(c.Subject)
	writeString(c.Issuer)
	writeString(string(c.PublicKey))
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], uint64(c.NotBefore.UnixNano()))
	buf.Write(t[:])
	binary.BigEndian.PutUint64(t[:], uint64(c.NotAfter.UnixNano()))
	buf.Write(t[:])
	flags := byte(0)
	if c.IsCA {
		flags |= 1
	}
	if c.IsProxy {
		flags |= 2
	}
	buf.WriteByte(flags)
	binary.BigEndian.PutUint64(t[:], c.Serial)
	buf.Write(t[:])
	return buf.Bytes()
}

// ValidAt reports whether the certificate's validity window contains t.
func (c *Certificate) ValidAt(t time.Time) error {
	if t.Before(c.NotBefore) {
		return ErrNotYetValid
	}
	if t.After(c.NotAfter) {
		return ErrExpired
	}
	return nil
}

// Credential is a certificate together with its private key — what a user,
// host, or service holds. For proxies, Chain carries the full path back to
// (but not including) the CA-issued end-entity certificate's issuer.
type Credential struct {
	Cert  *Certificate
	Key   ed25519.PrivateKey
	Chain []*Certificate // ancestor certs, leaf-first, excluding the CA cert
}

// Subject returns the credential's distinguished name.
func (c *Credential) Subject() string { return c.Cert.Subject }

// Identity returns the end-entity DN: for a proxy, the DN of the original
// user certificate (all "/CN=proxy" components stripped); for a plain
// credential, its subject. Authorization is always by identity.
func (c *Credential) Identity() string {
	return StripProxy(c.Cert.Subject)
}

// StripProxy removes trailing "/CN=proxy" components from a DN.
func StripProxy(dn string) string {
	for strings.HasSuffix(dn, "/CN=proxy") {
		dn = strings.TrimSuffix(dn, "/CN=proxy")
	}
	return dn
}

// CA is a certificate authority. Grid3 trusted the DOEGrids CA; tests also
// spin up per-VO CAs to exercise multi-trust configurations.
type CA struct {
	cred   *Credential
	serial uint64
}

// NewCA creates a self-signed certificate authority with the given DN,
// valid for the given lifetime starting at now.
func NewCA(dn string, now time.Time, lifetime time.Duration) (*CA, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gsi: generating CA key: %w", err)
	}
	cert := &Certificate{
		Subject:   dn,
		Issuer:    dn,
		PublicKey: pub,
		NotBefore: now,
		NotAfter:  now.Add(lifetime),
		IsCA:      true,
		Serial:    1,
	}
	cert.Signature = ed25519.Sign(priv, cert.tbsBytes())
	return &CA{cred: &Credential{Cert: cert, Key: priv}, serial: 1}, nil
}

// Certificate returns the CA's self-signed certificate for distribution to
// relying parties.
func (ca *CA) Certificate() *Certificate { return ca.cred.Cert }

// Issue signs an end-entity (user or host) certificate for the subject DN.
func (ca *CA) Issue(subject string, now time.Time, lifetime time.Duration) (*Credential, error) {
	if subject == "" {
		return nil, errors.New("gsi: empty subject DN")
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gsi: generating key for %s: %w", subject, err)
	}
	ca.serial++
	cert := &Certificate{
		Subject:   subject,
		Issuer:    ca.cred.Cert.Subject,
		PublicKey: pub,
		NotBefore: now,
		NotAfter:  now.Add(lifetime),
		Serial:    ca.serial,
	}
	cert.Signature = ed25519.Sign(ca.cred.Key, cert.tbsBytes())
	return &Credential{Cert: cert, Key: priv}, nil
}

// Renew issues a fresh credential for the same subject as cred, signed by
// this CA with a new key and the given validity window — the certificate
// renewal a site performs when its host credential approaches (or passes)
// expiry. The old credential is untouched; callers swap references.
func (ca *CA) Renew(cred *Credential, now time.Time, lifetime time.Duration) (*Credential, error) {
	return ca.Issue(cred.Cert.Subject, now, lifetime)
}

// NewProxy derives a short-lived proxy credential from cred, as grid-proxy-init
// does. The proxy subject extends the signer's subject with "/CN=proxy", its
// lifetime must not exceed the signer's, and chain depth is bounded.
func NewProxy(cred *Credential, now time.Time, lifetime time.Duration) (*Credential, error) {
	if len(cred.Chain)+1 >= MaxProxyDepth {
		return nil, ErrProxyDepth
	}
	if err := cred.Cert.ValidAt(now); err != nil {
		return nil, fmt.Errorf("gsi: signer invalid: %w", err)
	}
	notAfter := now.Add(lifetime)
	if notAfter.After(cred.Cert.NotAfter) {
		return nil, ErrProxyOutlives
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gsi: generating proxy key: %w", err)
	}
	cert := &Certificate{
		Subject:   cred.Cert.Subject + "/CN=proxy",
		Issuer:    cred.Cert.Subject,
		PublicKey: pub,
		NotBefore: now,
		NotAfter:  notAfter,
		IsProxy:   true,
		Serial:    cred.Cert.Serial,
	}
	cert.Signature = ed25519.Sign(cred.Key, cert.tbsBytes())
	chain := append([]*Certificate{cred.Cert}, cred.Chain...)
	return &Credential{Cert: cert, Key: priv, Chain: chain}, nil
}

// TrustStore holds the CA certificates a relying party accepts.
type TrustStore struct {
	cas map[string]*Certificate // by subject DN
}

// NewTrustStore builds a store trusting the given CA certificates.
func NewTrustStore(cas ...*Certificate) *TrustStore {
	s := &TrustStore{cas: make(map[string]*Certificate, len(cas))}
	for _, c := range cas {
		s.Add(c)
	}
	return s
}

// Add trusts an additional CA certificate.
func (s *TrustStore) Add(c *Certificate) {
	if !c.IsCA {
		panic("gsi: adding non-CA certificate to trust store")
	}
	s.cas[c.Subject] = c
}

// Verify validates a certificate and its proxy chain at time now, returning
// the end-entity identity DN on success. chain is leaf's ancestors,
// leaf-first (Credential.Chain layout).
func (s *TrustStore) Verify(leaf *Certificate, chain []*Certificate, now time.Time) (string, error) {
	depth := 0
	cur := leaf
	rest := chain
	for {
		if err := cur.ValidAt(now); err != nil {
			return "", fmt.Errorf("%w (subject %s)", err, cur.Subject)
		}
		if cur.IsProxy {
			depth++
			if depth > MaxProxyDepth {
				return "", ErrProxyDepth
			}
			if len(rest) == 0 {
				return "", fmt.Errorf("gsi: proxy %s missing signer in chain", cur.Subject)
			}
			signer := rest[0]
			rest = rest[1:]
			if cur.Subject != signer.Subject+"/CN=proxy" {
				return "", ErrProxySubject
			}
			if cur.NotAfter.After(signer.NotAfter) {
				return "", ErrProxyOutlives
			}
			if !ed25519.Verify(signer.PublicKey, cur.tbsBytes(), cur.Signature) {
				return "", ErrBadSignature
			}
			cur = signer
			continue
		}
		// End-entity or CA cert: must be signed by a trusted CA.
		caCert, ok := s.cas[cur.Issuer]
		if !ok {
			return "", fmt.Errorf("%w (%s)", ErrUntrustedIssuer, cur.Issuer)
		}
		if !caCert.IsCA {
			return "", ErrNotCA
		}
		if err := caCert.ValidAt(now); err != nil {
			return "", fmt.Errorf("gsi: CA %s: %w", caCert.Subject, err)
		}
		if !ed25519.Verify(caCert.PublicKey, cur.tbsBytes(), cur.Signature) {
			return "", ErrBadSignature
		}
		return StripProxy(leaf.Subject), nil
	}
}

// VerifyCredential validates cred's full chain and returns its identity DN.
func (s *TrustStore) VerifyCredential(cred *Credential, now time.Time) (string, error) {
	return s.Verify(cred.Cert, cred.Chain, now)
}

// Challenge-response authentication: the verifier sends a nonce, the prover
// signs it. This is the handshake GRAM and GridFTP use in this codebase.

// SignChallenge signs a nonce with the credential's key.
func SignChallenge(cred *Credential, nonce []byte) []byte {
	return ed25519.Sign(cred.Key, nonce)
}

// VerifyChallenge checks a challenge signature against the leaf certificate.
func VerifyChallenge(leaf *Certificate, nonce, sig []byte) error {
	if !ed25519.Verify(leaf.PublicKey, nonce, sig) {
		return ErrBadSignature
	}
	return nil
}
