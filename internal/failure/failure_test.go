package failure

import (
	"fmt"
	"testing"
	"time"

	"grid3/internal/batch"
	"grid3/internal/dist"
	"grid3/internal/glue"
	"grid3/internal/gram"
	"grid3/internal/gridftp"
	"grid3/internal/gsi"
	"grid3/internal/obs"
	"grid3/internal/sim"
	"grid3/internal/site"
)

type rig struct {
	eng *sim.Engine
	rng *dist.RNG
	net *gridftp.Network
	tgt *Target
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine(sim.Grid3Epoch)
	st := site.MustNew(site.Config{
		Name: "IU", Host: "iu.edu", CPUs: 8, DiskBytes: 1 << 30, WANMbps: 155,
		LRMS: glue.PBS, MaxWall: 100 * time.Hour,
		Accounts: map[string]string{"ivdgl": "grp_ivdgl"},
	})
	bs := batch.New(eng, batch.Config{Name: "IU", Slots: 8, EnforceWall: true, MaxWall: st.MaxWall})
	gm := gsi.NewGridmap()
	gm.Map("/CN=user", "grp_ivdgl")
	gk := gram.New(eng, st, bs, gm)
	net := gridftp.NewNetwork(eng)
	net.AddEndpoint("IU", 155)
	net.AddEndpoint("BNL", 622)
	return &rig{eng: eng, rng: dist.New(1), net: net, tgt: &Target{Site: st, Batch: bs, Gatekeeper: gk}}
}

func (r *rig) fill(n int) []*batch.Job {
	jobs := make([]*batch.Job, n)
	for i := range jobs {
		jobs[i] = &batch.Job{ID: fmt.Sprintf("j%d", i), VO: "ivdgl", Walltime: 90 * time.Hour, Runtime: 80 * time.Hour}
		r.tgt.Batch.Submit(jobs[i])
	}
	return jobs
}

func TestDiskFullIncident(t *testing.T) {
	r := newRig(t)
	cfg := Config{DiskFullMTBF: 24 * time.Hour, DiskFullDuration: 4 * time.Hour}
	inj := New(r.eng, r.rng, cfg, nil)
	inj.Register(r.tgt)
	jobs := r.fill(4)
	r.eng.RunUntil(30 * 24 * time.Hour)
	counts := inj.CountByKind()
	if counts[DiskFull] == 0 {
		t.Fatal("no disk-full incidents over 30 days at 1-day MTBF")
	}
	// During the incident the disk was saturated; afterwards space frees.
	if r.tgt.Site.Disk.Free() != 1<<30 {
		t.Fatalf("disk not cleaned up: free = %d", r.tgt.Site.Disk.Free())
	}
	killed := inj.KilledByKind()[DiskFull]
	if killed == 0 {
		t.Fatal("disk-full killed no jobs despite a full site")
	}
	_ = jobs
}

func TestServiceFailureKillsInGroupAndRecovers(t *testing.T) {
	r := newRig(t)
	cfg := Config{ServiceMTBF: 12 * time.Hour, ServiceDuration: 2 * time.Hour}
	inj := New(r.eng, r.rng, cfg, nil)
	inj.Register(r.tgt)
	r.fill(8)
	// Run long enough for at least one service failure.
	r.eng.RunUntil(10 * 24 * time.Hour)
	if inj.CountByKind()[ServiceFailure] == 0 {
		t.Fatal("no service failures in 10 days at 12h MTBF")
	}
	// The first incident killed the whole group of 8.
	for _, e := range inj.Events() {
		if e.Kind == ServiceFailure {
			if e.JobsKilled != 8 {
				t.Fatalf("group kill = %d, want all 8", e.JobsKilled)
			}
			break
		}
	}
	// Site recovered eventually.
	if !r.tgt.Site.Healthy() {
		t.Fatal("site never recovered")
	}
}

func TestNetworkOutage(t *testing.T) {
	r := newRig(t)
	cfg := Config{OutageMTBF: 6 * time.Hour, OutageDuration: time.Hour}
	inj := New(r.eng, r.rng, cfg, r.net)
	inj.Register(r.tgt)
	var failed bool
	// A long transfer across the scenario gets interrupted eventually.
	r.net.Start("IU", "BNL", 1<<45, "ivdgl", func(tr *gridftp.Transfer, err error) {
		failed = err != nil
	})
	r.eng.RunUntil(5 * 24 * time.Hour)
	if inj.CountByKind()[NetworkOutage] == 0 {
		t.Fatal("no outages in 5 days at 6h MTBF")
	}
	if !failed {
		t.Fatal("long transfer survived the outages")
	}
	ep, _ := r.net.Endpoint("IU")
	if !ep.Up() {
		t.Fatal("endpoint never recovered")
	}
}

func TestNightlyRollover(t *testing.T) {
	r := newRig(t)
	cfg := Config{
		RolloverSites: []string{"IU"}, RolloverFraction: 0.5,
		RolloverDuration: time.Hour,
	}
	inj := New(r.eng, r.rng, cfg, nil)
	inj.Register(r.tgt)
	r.fill(8)
	r.eng.RunUntil(72 * time.Hour)
	rollovers := inj.CountByKind()[NightlyRollover]
	if rollovers < 2 || rollovers > 3 {
		t.Fatalf("rollovers in 3 days = %d", rollovers)
	}
	if inj.KilledByKind()[NightlyRollover] == 0 {
		t.Fatal("rollover killed nothing on a saturated site")
	}
	// Slots restored after each rollover window.
	if r.tgt.Batch.AvailableSlots() != 8 {
		t.Fatalf("slots = %d after recovery", r.tgt.Batch.AvailableSlots())
	}
}

func TestRandomLossIsRare(t *testing.T) {
	r := newRig(t)
	cfg := Grid3Defaults()
	cfg.RolloverSites = []string{"IU"}
	inj := New(r.eng, r.rng, cfg, r.net)
	inj.Register(r.tgt)
	r.fill(8)
	r.eng.RunUntil(60 * 24 * time.Hour)
	frac := inj.SiteProblemFraction()
	// The paper: ~90% of failures from site problems.
	if frac < 0.7 {
		t.Fatalf("site-problem fraction = %.2f, random losses dominate", frac)
	}
	if inj.Sites()[0] != "IU" {
		t.Fatal("sites list wrong")
	}
}

func TestStopDisarms(t *testing.T) {
	r := newRig(t)
	cfg := Config{ServiceMTBF: time.Hour, ServiceDuration: time.Minute}
	inj := New(r.eng, r.rng, cfg, nil)
	inj.Register(r.tgt)
	r.eng.RunUntil(6 * time.Hour)
	n := len(inj.Events())
	if n == 0 {
		t.Fatal("nothing injected before stop")
	}
	inj.Stop()
	r.eng.RunUntil(48 * time.Hour)
	if len(inj.Events()) != n {
		t.Fatalf("events grew after Stop: %d -> %d", n, len(inj.Events()))
	}
}

func TestDeterministicReplay(t *testing.T) {
	runOnce := func() []Event {
		r := newRig(t)
		cfg := Grid3Defaults()
		inj := New(r.eng, r.rng, cfg, r.net)
		inj.Register(r.tgt)
		r.fill(8)
		r.eng.RunUntil(30 * 24 * time.Hour)
		return inj.Events()
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestInstrumentsMatchEventLog(t *testing.T) {
	// Satellite check: the per-kind incident / jobs-killed counters must
	// equal the injector's own event log across a seeded, failure-heavy day.
	r := newRig(t)
	o := obs.New(r.eng.Now)
	cfg := Config{
		DiskFullMTBF: 6 * time.Hour, DiskFullDuration: 2 * time.Hour,
		ServiceMTBF: 8 * time.Hour, ServiceDuration: time.Hour,
		OutageMTBF: 10 * time.Hour, OutageDuration: time.Hour,
		RolloverSites: []string{"IU"}, RolloverFraction: 0.25, RolloverDuration: time.Hour,
		RandomLossPerDay: 4,
	}
	inj := New(r.eng, r.rng, cfg, r.net)
	inj.Ins = NewInstruments(o)
	inj.Register(r.tgt)
	// Keep the batch slots occupied so incidents have jobs to kill.
	refill := sim.NewTicker(r.eng, 30*time.Minute, func() {
		for i := r.tgt.Batch.RunningCount(); i < 8; i++ {
			r.tgt.Batch.Submit(&batch.Job{
				ID: fmt.Sprintf("fill-%d-%d", r.eng.Now(), i), VO: "ivdgl",
				Walltime: 90 * time.Hour, Runtime: 80 * time.Hour,
			})
		}
	})
	defer refill.Stop()
	r.eng.RunUntil(24 * time.Hour)

	incidents := inj.CountByKind()
	killed := inj.KilledByKind()
	total := 0
	for _, n := range incidents {
		total += n
	}
	if total == 0 || incidents[DiskFull] == 0 || incidents[ServiceFailure] == 0 {
		t.Fatalf("day too quiet to validate counters: %v", incidents)
	}
	snap := o.Metrics.Snapshot()
	counter := func(name string) uint64 {
		for _, c := range snap.Counters {
			if c.Name == name {
				return c.Value
			}
		}
		return 0
	}
	for k := 0; k < numKinds; k++ {
		kind := Kind(k)
		if got := counter("failure." + kind.String() + ".incidents"); got != uint64(incidents[kind]) {
			t.Errorf("%s incidents counter = %d, event log = %d", kind, got, incidents[kind])
		}
		if got := counter("failure." + kind.String() + ".jobs_killed"); got != uint64(killed[kind]) {
			t.Errorf("%s jobs_killed counter = %d, event log = %d", kind, got, killed[kind])
		}
	}
}

func TestScaledConfig(t *testing.T) {
	base := Grid3Defaults()
	got := Scaled(base, 4)
	if got.DiskFullMTBF != base.DiskFullMTBF/4 || got.ServiceMTBF != base.ServiceMTBF/4 || got.OutageMTBF != base.OutageMTBF/4 {
		t.Fatalf("MTBFs not scaled: %+v", got)
	}
	if got.RandomLossPerDay != base.RandomLossPerDay*4 {
		t.Fatalf("RandomLossPerDay = %v", got.RandomLossPerDay)
	}
	if got.DiskFullDuration != base.DiskFullDuration || got.ServiceDuration != base.ServiceDuration {
		t.Fatal("durations must not scale")
	}
	for _, in := range []float64{1, 0, -2} {
		id := Scaled(base, in)
		if id.DiskFullMTBF != base.DiskFullMTBF || id.RandomLossPerDay != base.RandomLossPerDay {
			t.Fatalf("intensity %v must return cfg unchanged", in)
		}
	}
	// Extreme intensity floors at one minute rather than going to zero.
	tiny := Scaled(Config{DiskFullMTBF: time.Hour}, 1e9)
	if tiny.DiskFullMTBF != time.Minute {
		t.Fatalf("floor = %v", tiny.DiskFullMTBF)
	}
}
