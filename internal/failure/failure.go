// Package failure injects the Grid3 failure taxonomy into a running
// scenario. §6.1: "Approximately 90% of failures were due to site
// problems: disk filling errors, gatekeeper overloading, or network
// interruptions. For example, we did not handle ACDC's nightly roll over
// of worker nodes gracefully." §6.2: "We saw few random job losses: more
// frequently a disk would fill up or a service would fail and all jobs
// submitted to a site would die."
package failure

import (
	"fmt"
	"sort"
	"time"

	"grid3/internal/batch"
	"grid3/internal/dist"
	"grid3/internal/gram"
	"grid3/internal/gridftp"
	"grid3/internal/obs"
	"grid3/internal/sim"
	"grid3/internal/site"
)

// numKinds is the count of failure kinds, for per-kind counter arrays.
const numKinds = int(RandomLoss) + 1

// Instruments tallies injected incidents and their job kills per failure
// kind. Nil disables.
type Instruments struct {
	Incidents  [numKinds]*obs.Counter
	JobsKilled [numKinds]*obs.Counter
}

// NewInstruments wires failure instruments into an observer; nil in, nil out.
func NewInstruments(o *obs.Observer) *Instruments {
	if o == nil {
		return nil
	}
	in := &Instruments{}
	for k := 0; k < numKinds; k++ {
		name := Kind(k).String()
		in.Incidents[k] = o.Metrics.Counter("failure." + name + ".incidents")
		in.JobsKilled[k] = o.Metrics.Counter("failure." + name + ".jobs_killed")
	}
	return in
}

// Kind classifies injected failures.
type Kind int

// Failure kinds, ordered roughly by the paper's frequency attribution.
const (
	DiskFull Kind = iota
	ServiceFailure
	NetworkOutage
	NightlyRollover
	RandomLoss
)

func (k Kind) String() string {
	switch k {
	case DiskFull:
		return "disk-full"
	case ServiceFailure:
		return "service-failure"
	case NetworkOutage:
		return "network-outage"
	case NightlyRollover:
		return "nightly-rollover"
	case RandomLoss:
		return "random-loss"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event records one injected incident.
type Event struct {
	Kind       Kind
	Site       string
	At         time.Duration
	Duration   time.Duration
	JobsKilled int
}

// Target bundles one site's failure surfaces.
type Target struct {
	Site       *site.Site
	Batch      *batch.System
	Gatekeeper *gram.Gatekeeper
}

// Config tunes incident rates. Zero MTBFs disable that class.
type Config struct {
	// DiskFullMTBF is each site's mean time between disk-pressure
	// incidents; the disk stays full for DiskFullDuration.
	DiskFullMTBF     time.Duration
	DiskFullDuration time.Duration
	// ServiceMTBF is each site's mean time between whole-service
	// failures (gatekeeper or batch master crash): all managed jobs die
	// in a group and the site refuses submissions for ServiceDuration.
	ServiceMTBF     time.Duration
	ServiceDuration time.Duration
	// OutageMTBF is each site's mean time between WAN interruptions of
	// OutageDuration.
	OutageMTBF     time.Duration
	OutageDuration time.Duration
	// RolloverSites lists sites with an ACDC-style nightly worker-node
	// rollover draining RolloverFraction of slots for RolloverDuration.
	RolloverSites    []string
	RolloverFraction float64
	RolloverDuration time.Duration
	// RandomLossPerDay is the expected count of individual job kills per
	// site per day ("we saw few random job losses").
	RandomLossPerDay float64
}

// Grid3Defaults approximates the paper's observed failure mix: enough site
// incidents to produce ~30% end-to-end job failure for staged workloads,
// with random losses rare.
func Grid3Defaults() Config {
	return Config{
		DiskFullMTBF:     10 * 24 * time.Hour,
		DiskFullDuration: 8 * time.Hour,
		ServiceMTBF:      14 * 24 * time.Hour,
		ServiceDuration:  6 * time.Hour,
		OutageMTBF:       21 * 24 * time.Hour,
		OutageDuration:   2 * time.Hour,
		RolloverFraction: 0.25,
		RolloverDuration: time.Hour,
		RandomLossPerDay: 0.05,
	}
}

// Scaled returns cfg with incident rates multiplied by intensity: MTBFs
// shrink and the random-loss rate grows by the factor, while incident
// durations stay untouched (a disk takes as long to clear at any failure
// rate). intensity <= 0 or exactly 1 returns cfg unchanged, so 0 can mean
// "default" in sweep configs. Scaled MTBFs are floored at one minute.
func Scaled(cfg Config, intensity float64) Config {
	if intensity <= 0 || intensity == 1 {
		return cfg
	}
	scale := func(d time.Duration) time.Duration {
		if d <= 0 {
			return d
		}
		nd := time.Duration(float64(d) / intensity)
		if nd < time.Minute {
			nd = time.Minute
		}
		return nd
	}
	cfg.DiskFullMTBF = scale(cfg.DiskFullMTBF)
	cfg.ServiceMTBF = scale(cfg.ServiceMTBF)
	cfg.OutageMTBF = scale(cfg.OutageMTBF)
	cfg.RandomLossPerDay *= intensity
	return cfg
}

// Injector drives incidents against registered targets.
type Injector struct {
	eng     *sim.Engine
	rng     *dist.RNG
	cfg     Config
	network *gridftp.Network
	targets map[string]*Target
	events  []Event
	stopped bool
	// Ins enables observability (nil = off). Set before registering targets.
	Ins *Instruments
}

// record appends the incident to the event log and bumps per-kind counters.
func (inj *Injector) record(e Event) {
	inj.events = append(inj.events, e)
	if in := inj.Ins; in != nil {
		in.Incidents[e.Kind].Inc()
		in.JobsKilled[e.Kind].Add(uint64(e.JobsKilled))
	}
}

// New creates an injector. network may be nil to disable WAN outages.
func New(eng *sim.Engine, rng *dist.RNG, cfg Config, network *gridftp.Network) *Injector {
	return &Injector{
		eng: eng, rng: rng, cfg: cfg, network: network,
		targets: make(map[string]*Target),
	}
}

// Register adds a site and arms its incident streams.
func (inj *Injector) Register(t *Target) {
	name := t.Site.Name
	inj.targets[name] = t
	if inj.cfg.DiskFullMTBF > 0 {
		inj.armDiskFull(t)
	}
	if inj.cfg.ServiceMTBF > 0 {
		inj.armService(t)
	}
	if inj.cfg.OutageMTBF > 0 && inj.network != nil {
		inj.armOutage(t)
	}
	if inj.cfg.RandomLossPerDay > 0 {
		inj.armRandomLoss(t)
	}
	for _, s := range inj.cfg.RolloverSites {
		if s == name {
			inj.armRollover(t)
		}
	}
}

// Stop disarms all future incidents (already-scheduled recoveries still run).
func (inj *Injector) Stop() { inj.stopped = true }

// Events returns the incident log.
func (inj *Injector) Events() []Event { return inj.events }

// CountByKind tallies incidents per class.
func (inj *Injector) CountByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, e := range inj.events {
		out[e.Kind]++
	}
	return out
}

// KilledByKind tallies jobs killed per class — the §6.1 failure
// attribution (site problems vs random losses).
func (inj *Injector) KilledByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, e := range inj.events {
		out[e.Kind] += e.JobsKilled
	}
	return out
}

// SiteProblemFraction returns the share of killed jobs attributable to
// site problems (everything except RandomLoss) — the paper reports ~90%.
func (inj *Injector) SiteProblemFraction() float64 {
	byKind := inj.KilledByKind()
	total, random := 0, 0
	for k, n := range byKind {
		total += n
		if k == RandomLoss {
			random += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(total-random) / float64(total)
}

func (inj *Injector) armDiskFull(t *Target) {
	delay := inj.rng.ExpDuration(inj.cfg.DiskFullMTBF)
	inj.eng.Schedule(delay, func() {
		if inj.stopped {
			return
		}
		inj.diskFull(t)
		inj.armDiskFull(t)
	})
}

// diskFull consumes all free space with a runaway scratch file, kills the
// site's running jobs (their output writes fail), and cleans up after the
// configured duration.
func (inj *Injector) diskFull(t *Target) {
	free := t.Site.Disk.Free()
	name := fmt.Sprintf("runaway-scratch-%d", inj.eng.Now())
	if free > 0 {
		t.Site.Disk.Store(name, free, false)
	}
	killed := t.Batch.KillRunning(nil, batch.NodeFailure)
	inj.record(Event{
		Kind: DiskFull, Site: t.Site.Name, At: inj.eng.Now(),
		Duration: inj.cfg.DiskFullDuration, JobsKilled: killed,
	})
	inj.eng.Schedule(inj.cfg.DiskFullDuration, func() {
		if t.Site.Disk.Has(name) {
			t.Site.Disk.Delete(name)
		}
	})
}

func (inj *Injector) armService(t *Target) {
	delay := inj.rng.ExpDuration(inj.cfg.ServiceMTBF)
	inj.eng.Schedule(delay, func() {
		if inj.stopped {
			return
		}
		inj.serviceFailure(t)
		inj.armService(t)
	})
}

// serviceFailure takes the gatekeeper down: every managed job dies in a
// group, submissions are refused until recovery.
func (inj *Injector) serviceFailure(t *Target) {
	t.Site.SetHealthy(false)
	killed := 0
	if t.Gatekeeper != nil {
		killed = t.Gatekeeper.FailAllManaged("site service failure")
	}
	// Locally-submitted jobs (and anything the gatekeeper does not manage)
	// die with the site services too.
	killed += t.Batch.KillRunning(nil, batch.NodeFailure)
	killed += t.Batch.FlushQueue()
	inj.record(Event{
		Kind: ServiceFailure, Site: t.Site.Name, At: inj.eng.Now(),
		Duration: inj.cfg.ServiceDuration, JobsKilled: killed,
	})
	inj.eng.Schedule(inj.cfg.ServiceDuration, func() {
		t.Site.SetHealthy(true)
	})
}

func (inj *Injector) armOutage(t *Target) {
	delay := inj.rng.ExpDuration(inj.cfg.OutageMTBF)
	inj.eng.Schedule(delay, func() {
		if inj.stopped {
			return
		}
		name := t.Site.Name
		inj.network.SetEndpointUp(name, false)
		inj.record(Event{
			Kind: NetworkOutage, Site: name, At: inj.eng.Now(),
			Duration: inj.cfg.OutageDuration,
		})
		inj.eng.Schedule(inj.cfg.OutageDuration, func() {
			inj.network.SetEndpointUp(name, true)
		})
		inj.armOutage(t)
	})
}

func (inj *Injector) armRollover(t *Target) {
	// Nightly at a site-specific minute past midnight.
	offset := time.Duration(inj.rng.Intn(60)) * time.Minute
	var nightly func()
	nightly = func() {
		if inj.stopped {
			return
		}
		n := int(float64(t.Batch.Slots()) * inj.cfg.RolloverFraction)
		if n < 1 {
			n = 1
		}
		killed := t.Batch.DrainSlots(n)
		inj.record(Event{
			Kind: NightlyRollover, Site: t.Site.Name, At: inj.eng.Now(),
			Duration: inj.cfg.RolloverDuration, JobsKilled: killed,
		})
		inj.eng.Schedule(inj.cfg.RolloverDuration, func() {
			t.Batch.RestoreSlots(n)
		})
		inj.eng.Schedule(24*time.Hour, nightly)
	}
	inj.eng.Schedule(24*time.Hour+offset, nightly)
}

func (inj *Injector) armRandomLoss(t *Target) {
	mtbf := time.Duration(float64(24*time.Hour) / inj.cfg.RandomLossPerDay)
	var next func()
	next = func() {
		if inj.stopped {
			return
		}
		// Kill one arbitrary (deterministically chosen) running job.
		killed := 0
		victimFound := false
		t.Batch.KillRunning(func(j *batch.Job) bool {
			if victimFound {
				return false
			}
			victimFound = true
			return true
		}, batch.NodeFailure)
		if victimFound {
			killed = 1
		}
		inj.record(Event{
			Kind: RandomLoss, Site: t.Site.Name, At: inj.eng.Now(), JobsKilled: killed,
		})
		inj.eng.Schedule(inj.rng.ExpDuration(mtbf), next)
	}
	inj.eng.Schedule(inj.rng.ExpDuration(mtbf), next)
}

// Sites returns registered site names, sorted.
func (inj *Injector) Sites() []string {
	out := make([]string, 0, len(inj.targets))
	for n := range inj.targets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Reseed swaps the injector's random stream. A warm-start campaign calls
// this right after restoring a checkpoint: every variant shares the
// checkpoint's identical, digest-verified warmup prefix, then draws its
// failure future from its own stream — same steady state, different luck.
func (inj *Injector) Reseed(rng *dist.RNG) { inj.rng = rng }
