// Package dagman implements Condor DAGMan semantics: dependency-ordered
// execution of job DAGs with PRE/POST scripts, per-node retries, a
// max-concurrency throttle, and rescue DAGs for resuming failed runs.
//
// Both LHC production systems on Grid3 ran through DAGMan: "CMS Production
// jobs are specified by reading input parameters from a control database
// and converting them to DAGs suitable for submission to Condor-G/DAGMan"
// (§4.2), and the Chimera/Pegasus virtual-data workflows of ATLAS, SDSS,
// and LIGO all compile to DAGMan DAGs.
package dagman

import (
	"errors"
	"fmt"
	"sort"

	"grid3/internal/obs"
)

// Instruments is DAGMan's observability wiring: one span per node attempt
// plus outcome counters. DAGMan has no clock of its own; the tracer carries
// the sim clock. Nil disables.
type Instruments struct {
	Tracer  *obs.Tracer
	Done    *obs.Counter
	Failed  *obs.Counter
	Retried *obs.Counter
}

// NewInstruments wires DAG instruments into an observer; nil in, nil out.
func NewInstruments(o *obs.Observer) *Instruments {
	if o == nil {
		return nil
	}
	return &Instruments{
		Tracer:  o.Tracer,
		Done:    o.Metrics.Counter("dagman.nodes.done"),
		Failed:  o.Metrics.Counter("dagman.nodes.failed"),
		Retried: o.Metrics.Counter("dagman.nodes.retried"),
	}
}

// tracer returns the span tracer, nil (disabled) when instruments are off.
func (in *Instruments) tracer() *obs.Tracer {
	if in == nil {
		return nil
	}
	return in.Tracer
}

// Errors.
var (
	ErrDuplicateNode = errors.New("dagman: duplicate node")
	ErrUnknownNode   = errors.New("dagman: unknown node")
	ErrCycle         = errors.New("dagman: DAG contains a cycle")
	ErrRunning       = errors.New("dagman: run already in progress")
)

// NodeState tracks a node through execution.
type NodeState int

// Node states.
const (
	NodeIdle NodeState = iota
	NodeRunning
	NodeDone
	NodeFailed
	NodeUnrunnable // an ancestor failed
)

func (s NodeState) String() string {
	switch s {
	case NodeIdle:
		return "idle"
	case NodeRunning:
		return "running"
	case NodeDone:
		return "done"
	case NodeFailed:
		return "failed"
	case NodeUnrunnable:
		return "unrunnable"
	}
	return fmt.Sprintf("NodeState(%d)", int(s))
}

// Work is a node's asynchronous payload: it must call done exactly once,
// possibly synchronously. Compute nodes wrap a GRAM submission; stage nodes
// wrap a GridFTP transfer.
type Work func(done func(err error))

// Node is one DAG vertex.
type Node struct {
	Name string
	// Pre runs before Work; a Pre error counts as a node failure (retried).
	Pre func() error
	// Work is the node's payload; nil means an empty (ordering-only) node.
	Work Work
	// Post runs after Work succeeds; a Post error fails the node.
	Post func() error
	// Retries is how many additional attempts a failed node gets.
	Retries int

	state    NodeState
	attempts int
	parents  []*Node
	children []*Node
	waiting  int // unfinished parents
	lastErr  error
	span     obs.SpanID // open span for the current attempt
}

// State returns the node's current state.
func (n *Node) State() NodeState { return n.state }

// Attempts returns how many times the node has been tried.
func (n *Node) Attempts() int { return n.attempts }

// Err returns the node's last failure.
func (n *Node) Err() error { return n.lastErr }

// DAG is a set of nodes and dependencies.
type DAG struct {
	nodes map[string]*Node
	order []string // insertion order for determinism
}

// New creates an empty DAG.
func New() *DAG {
	return &DAG{nodes: make(map[string]*Node)}
}

// Add inserts a node.
func (d *DAG) Add(n *Node) error {
	if n.Name == "" {
		return errors.New("dagman: node without name")
	}
	if _, dup := d.nodes[n.Name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, n.Name)
	}
	d.nodes[n.Name] = n
	d.order = append(d.order, n.Name)
	return nil
}

// AddEdge declares child depends on parent (PARENT p CHILD c).
func (d *DAG) AddEdge(parent, child string) error {
	p, ok := d.nodes[parent]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, parent)
	}
	c, ok := d.nodes[child]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, child)
	}
	p.children = append(p.children, c)
	c.parents = append(c.parents, p)
	return nil
}

// Node returns a node by name.
func (d *DAG) Node(name string) (*Node, bool) {
	n, ok := d.nodes[name]
	return n, ok
}

// Len returns the node count.
func (d *DAG) Len() int { return len(d.nodes) }

// Names returns node names in insertion order.
func (d *DAG) Names() []string { return append([]string(nil), d.order...) }

// Validate checks acyclicity.
func (d *DAG) Validate() error {
	state := map[string]int{}
	var visit func(n *Node) error
	visit = func(n *Node) error {
		switch state[n.Name] {
		case 1:
			return fmt.Errorf("%w (at %s)", ErrCycle, n.Name)
		case 2:
			return nil
		}
		state[n.Name] = 1
		for _, c := range n.children {
			if err := visit(c); err != nil {
				return err
			}
		}
		state[n.Name] = 2
		return nil
	}
	for _, name := range d.order {
		if err := visit(d.nodes[name]); err != nil {
			return err
		}
	}
	return nil
}

// Result summarizes a completed run.
type Result struct {
	Done       []string
	Failed     []string
	Unrunnable []string
}

// Succeeded reports whether every node completed.
func (r Result) Succeeded() bool {
	return len(r.Failed) == 0 && len(r.Unrunnable) == 0
}

// Runner executes a DAG. It is event-driven and single-threaded: Work
// payloads hand completion back via callbacks (on the simulation engine or
// any other async source).
type Runner struct {
	dag *DAG
	// MaxJobs throttles concurrently running nodes; 0 = unlimited. DAGMan's
	// -maxjobs, used to protect gatekeepers (§6.4 load model).
	MaxJobs int
	// Skip marks nodes to treat as already done (a rescue-DAG restart).
	Skip map[string]bool
	// Ins enables observability (nil = off).
	Ins *Instruments
	// Parent is the span under which node spans are parented (the enclosing
	// workflow span), zero for none.
	Parent obs.SpanID
	// OnNodeRetry, if set, observes every node retry before the node
	// re-enters the ready queue: the fault-management hook that lets the
	// embedding system steer the next attempt (per-site exclusion) or count
	// recoveries. attempt is the number of attempts already burned.
	OnNodeRetry func(node string, attempt int, err error)

	running   int
	ready     []*Node
	remaining int
	onDone    func(Result)
	started   bool
	finished  bool
}

// NewRunner prepares a runner for one execution of the DAG.
func NewRunner(d *DAG) *Runner {
	return &Runner{dag: d}
}

// Run begins execution; onDone fires exactly once when no node can make
// further progress. Run returns immediately after starting initial nodes
// (execution may complete synchronously if payloads are synchronous).
func (r *Runner) Run(onDone func(Result)) error {
	if r.started {
		return ErrRunning
	}
	if err := r.dag.Validate(); err != nil {
		return err
	}
	r.started = true
	r.onDone = onDone
	r.remaining = r.dag.Len()

	// Initialize waiting counts and seed ready set in insertion order.
	for _, name := range r.dag.order {
		n := r.dag.nodes[name]
		n.waiting = len(n.parents)
	}
	for _, name := range r.dag.order {
		n := r.dag.nodes[name]
		if r.Skip != nil && r.Skip[name] {
			// Rescue restart: completed in a prior run.
			r.settle(n, NodeDone, nil)
			continue
		}
		if n.waiting == 0 && n.state == NodeIdle {
			r.ready = append(r.ready, n)
		}
	}
	r.pump()
	r.checkDone()
	return nil
}

// pump starts ready nodes up to the throttle.
func (r *Runner) pump() {
	for len(r.ready) > 0 && (r.MaxJobs == 0 || r.running < r.MaxJobs) {
		n := r.ready[0]
		r.ready = r.ready[1:]
		if n.state != NodeIdle {
			continue
		}
		r.start(n)
	}
}

func (r *Runner) start(n *Node) {
	n.state = NodeRunning
	n.attempts++
	r.running++
	n.span = r.Ins.tracer().Begin(obs.KindDAGNode, r.Parent, n.Name, "", "")
	if n.Pre != nil {
		if err := n.Pre(); err != nil {
			r.finishAttempt(n, fmt.Errorf("pre script: %w", err))
			return
		}
	}
	if n.Work == nil {
		r.finishAttempt(n, nil)
		return
	}
	fired := false
	n.Work(func(err error) {
		if fired {
			panic(fmt.Sprintf("dagman: node %s completed twice", n.Name))
		}
		fired = true
		r.finishAttempt(n, err)
	})
}

func (r *Runner) finishAttempt(n *Node, err error) {
	if err == nil && n.Post != nil {
		if perr := n.Post(); perr != nil {
			err = fmt.Errorf("post script: %w", perr)
		}
	}
	r.running--
	if err != nil {
		n.lastErr = err
		r.Ins.tracer().Fail(n.span, err.Error())
		n.span = 0
		if n.attempts <= n.Retries {
			// Retry: back to the ready queue.
			if in := r.Ins; in != nil {
				in.Retried.Inc()
			}
			if r.OnNodeRetry != nil {
				r.OnNodeRetry(n.Name, n.attempts, err)
			}
			n.state = NodeIdle
			r.ready = append(r.ready, n)
			r.pump()
			r.checkDone()
			return
		}
		if in := r.Ins; in != nil {
			in.Failed.Inc()
		}
		r.settle(n, NodeFailed, err)
	} else {
		r.Ins.tracer().End(n.span)
		n.span = 0
		if in := r.Ins; in != nil {
			in.Done.Inc()
		}
		r.settle(n, NodeDone, nil)
	}
	r.pump()
	r.checkDone()
}

// settle finalizes a node's terminal state and propagates to children.
func (r *Runner) settle(n *Node, st NodeState, err error) {
	n.state = st
	n.lastErr = err
	r.remaining--
	switch st {
	case NodeDone:
		for _, c := range n.children {
			c.waiting--
			if c.waiting == 0 && c.state == NodeIdle {
				r.ready = append(r.ready, c)
			}
		}
	case NodeFailed, NodeUnrunnable:
		for _, c := range n.children {
			if c.state == NodeIdle {
				r.settle(c, NodeUnrunnable, fmt.Errorf("ancestor %s failed", n.Name))
			}
		}
	}
}

// checkDone fires the completion callback when nothing can progress. An
// idle node always has an ancestor chain bottoming out in a ready or
// running node (failures cascade to descendants immediately), so the run is
// over exactly when nothing runs and nothing is ready.
func (r *Runner) checkDone() {
	if r.finished || r.onDone == nil {
		return
	}
	if r.running > 0 || len(r.ready) > 0 {
		return
	}
	r.finished = true
	res := Result{}
	for _, name := range r.dag.order {
		n := r.dag.nodes[name]
		switch n.state {
		case NodeDone:
			res.Done = append(res.Done, name)
		case NodeFailed:
			res.Failed = append(res.Failed, name)
		case NodeUnrunnable, NodeIdle:
			res.Unrunnable = append(res.Unrunnable, name)
		case NodeRunning:
			// unreachable: running > 0 prevents completion
		}
	}
	r.onDone(res)
}

// Rescue returns the names of completed nodes, for use as Skip in a
// rerun — DAGMan's rescue DAG mechanism.
func (r *Runner) Rescue() map[string]bool {
	out := make(map[string]bool)
	for name, n := range r.dag.nodes {
		if n.state == NodeDone {
			out[name] = true
		}
	}
	return out
}

// RescueList renders the rescue set as a sorted list (the rescue file).
func (r *Runner) RescueList() []string {
	var out []string
	for name := range r.Rescue() {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
