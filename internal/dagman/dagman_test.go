package dagman

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"grid3/internal/sim"
)

// syncNode adds a node whose work succeeds synchronously, recording order.
func syncNode(t *testing.T, d *DAG, name string, order *[]string) *Node {
	t.Helper()
	n := &Node{Name: name, Work: func(done func(error)) {
		*order = append(*order, name)
		done(nil)
	}}
	if err := d.Add(n); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestLinearOrder(t *testing.T) {
	d := New()
	var order []string
	syncNode(t, d, "gen", &order)
	syncNode(t, d, "sim", &order)
	syncNode(t, d, "reco", &order)
	d.AddEdge("gen", "sim")
	d.AddEdge("sim", "reco")
	var res Result
	if err := NewRunner(d).Run(func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded() || len(res.Done) != 3 {
		t.Fatalf("result = %+v", res)
	}
	if order[0] != "gen" || order[1] != "sim" || order[2] != "reco" {
		t.Fatalf("order = %v", order)
	}
}

func TestDiamond(t *testing.T) {
	d := New()
	var order []string
	for _, n := range []string{"top", "left", "right", "bottom"} {
		syncNode(t, d, n, &order)
	}
	d.AddEdge("top", "left")
	d.AddEdge("top", "right")
	d.AddEdge("left", "bottom")
	d.AddEdge("right", "bottom")
	var res Result
	NewRunner(d).Run(func(r Result) { res = r })
	if !res.Succeeded() {
		t.Fatalf("result = %+v", res)
	}
	if order[0] != "top" || order[3] != "bottom" {
		t.Fatalf("order = %v", order)
	}
}

func TestCycleDetected(t *testing.T) {
	d := New()
	var order []string
	syncNode(t, d, "a", &order)
	syncNode(t, d, "b", &order)
	d.AddEdge("a", "b")
	d.AddEdge("b", "a")
	if err := NewRunner(d).Run(func(Result) {}); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateAndUnknown(t *testing.T) {
	d := New()
	d.Add(&Node{Name: "x"})
	if err := d.Add(&Node{Name: "x"}); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("dup err = %v", err)
	}
	if err := d.AddEdge("x", "ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("edge err = %v", err)
	}
	if err := d.Add(&Node{}); err == nil {
		t.Fatal("unnamed node accepted")
	}
}

func TestFailurePropagatesToDescendants(t *testing.T) {
	d := New()
	var order []string
	syncNode(t, d, "ok", &order)
	d.Add(&Node{Name: "bad", Work: func(done func(error)) { done(errors.New("segfault")) }})
	syncNode(t, d, "child", &order)
	syncNode(t, d, "grandchild", &order)
	syncNode(t, d, "independent", &order)
	d.AddEdge("bad", "child")
	d.AddEdge("child", "grandchild")
	var res Result
	NewRunner(d).Run(func(r Result) { res = r })
	if res.Succeeded() {
		t.Fatal("run claimed success")
	}
	if len(res.Failed) != 1 || res.Failed[0] != "bad" {
		t.Fatalf("failed = %v", res.Failed)
	}
	if len(res.Unrunnable) != 2 {
		t.Fatalf("unrunnable = %v", res.Unrunnable)
	}
	// Independent branch still ran.
	found := false
	for _, n := range order {
		if n == "independent" {
			found = true
		}
	}
	if !found {
		t.Fatal("independent node did not run")
	}
	n, _ := d.Node("grandchild")
	if n.State() != NodeUnrunnable {
		t.Fatalf("grandchild state = %v", n.State())
	}
}

func TestRetries(t *testing.T) {
	d := New()
	tries := 0
	d.Add(&Node{Name: "flaky", Retries: 2, Work: func(done func(error)) {
		tries++
		if tries < 3 {
			done(errors.New("transient"))
			return
		}
		done(nil)
	}})
	var res Result
	NewRunner(d).Run(func(r Result) { res = r })
	if !res.Succeeded() || tries != 3 {
		t.Fatalf("tries = %d, result = %+v", tries, res)
	}
	n, _ := d.Node("flaky")
	if n.Attempts() != 3 {
		t.Fatalf("attempts = %d", n.Attempts())
	}
}

func TestRetriesExhausted(t *testing.T) {
	d := New()
	tries := 0
	d.Add(&Node{Name: "doomed", Retries: 2, Work: func(done func(error)) {
		tries++
		done(errors.New("permanent"))
	}})
	var res Result
	NewRunner(d).Run(func(r Result) { res = r })
	if res.Succeeded() || tries != 3 {
		t.Fatalf("tries = %d, result = %+v", tries, res)
	}
}

func TestPrePostScripts(t *testing.T) {
	d := New()
	var trace []string
	d.Add(&Node{
		Name: "n",
		Pre:  func() error { trace = append(trace, "pre"); return nil },
		Work: func(done func(error)) { trace = append(trace, "work"); done(nil) },
		Post: func() error { trace = append(trace, "post"); return nil },
	})
	var res Result
	NewRunner(d).Run(func(r Result) { res = r })
	if !res.Succeeded() {
		t.Fatalf("result = %+v", res)
	}
	if len(trace) != 3 || trace[0] != "pre" || trace[1] != "work" || trace[2] != "post" {
		t.Fatalf("trace = %v", trace)
	}
}

func TestPreFailureRetriesWithoutWork(t *testing.T) {
	d := New()
	workRan := false
	preTries := 0
	d.Add(&Node{
		Name:    "n",
		Retries: 1,
		Pre: func() error {
			preTries++
			return errors.New("stage-in dir missing")
		},
		Work: func(done func(error)) { workRan = true; done(nil) },
	})
	var res Result
	NewRunner(d).Run(func(r Result) { res = r })
	if res.Succeeded() || preTries != 2 || workRan {
		t.Fatalf("preTries=%d workRan=%v res=%+v", preTries, workRan, res)
	}
}

func TestPostFailureFailsNode(t *testing.T) {
	d := New()
	d.Add(&Node{
		Name: "n",
		Work: func(done func(error)) { done(nil) },
		Post: func() error { return errors.New("output validation failed") },
	})
	var res Result
	NewRunner(d).Run(func(r Result) { res = r })
	if res.Succeeded() {
		t.Fatal("post failure ignored")
	}
}

func TestAsyncExecutionOnEngine(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	d := New()
	var ends []time.Duration
	for i, dur := range []time.Duration{2 * time.Hour, time.Hour} {
		dur := dur
		d.Add(&Node{Name: fmt.Sprintf("job%d", i), Work: func(done func(error)) {
			eng.Schedule(dur, func() {
				ends = append(ends, eng.Now())
				done(nil)
			})
		}})
	}
	var res Result
	gotDone := false
	NewRunner(d).Run(func(r Result) { res = r; gotDone = true })
	if gotDone {
		t.Fatal("completed before engine ran")
	}
	eng.Run()
	if !gotDone || !res.Succeeded() {
		t.Fatalf("res = %+v", res)
	}
	// Both ran in parallel: ends at 1h and 2h.
	if len(ends) != 2 || ends[0] != time.Hour || ends[1] != 2*time.Hour {
		t.Fatalf("ends = %v", ends)
	}
}

func TestMaxJobsThrottle(t *testing.T) {
	eng := sim.NewEngine(sim.Grid3Epoch)
	d := New()
	running, peak := 0, 0
	for i := 0; i < 10; i++ {
		d.Add(&Node{Name: fmt.Sprintf("n%d", i), Work: func(done func(error)) {
			running++
			if running > peak {
				peak = running
			}
			eng.Schedule(time.Hour, func() {
				running--
				done(nil)
			})
		}})
	}
	r := NewRunner(d)
	r.MaxJobs = 3
	var res Result
	r.Run(func(rr Result) { res = rr })
	eng.Run()
	if !res.Succeeded() {
		t.Fatalf("res = %+v", res)
	}
	if peak != 3 {
		t.Fatalf("peak concurrency = %d, want 3", peak)
	}
}

func TestRescueRestart(t *testing.T) {
	d := New()
	var order []string
	syncNode(t, d, "a", &order)
	broken := true
	d.Add(&Node{Name: "b", Work: func(done func(error)) {
		if broken {
			done(errors.New("site down"))
			return
		}
		order = append(order, "b")
		done(nil)
	}})
	syncNode(t, d, "c", &order)
	d.AddEdge("a", "b")
	d.AddEdge("b", "c")
	r1 := NewRunner(d)
	var res1 Result
	r1.Run(func(r Result) { res1 = r })
	if res1.Succeeded() {
		t.Fatal("first run should fail")
	}
	rescue := r1.Rescue()
	if !rescue["a"] || rescue["b"] || rescue["c"] {
		t.Fatalf("rescue = %v", rescue)
	}
	if list := r1.RescueList(); len(list) != 1 || list[0] != "a" {
		t.Fatalf("rescue list = %v", list)
	}

	// Fix the site, rebuild the DAG (nodes hold state), rerun with Skip.
	d2 := New()
	order = nil
	broken = false
	syncNode(t, d2, "a", &order)
	d2.Add(&Node{Name: "b", Work: func(done func(error)) {
		order = append(order, "b")
		done(nil)
	}})
	syncNode(t, d2, "c", &order)
	d2.AddEdge("a", "b")
	d2.AddEdge("b", "c")
	r2 := NewRunner(d2)
	r2.Skip = rescue
	var res2 Result
	r2.Run(func(r Result) { res2 = r })
	if !res2.Succeeded() {
		t.Fatalf("rescue run = %+v", res2)
	}
	// "a" must not re-execute.
	if len(order) != 2 || order[0] != "b" || order[1] != "c" {
		t.Fatalf("rescue order = %v", order)
	}
}

func TestRunTwiceRejected(t *testing.T) {
	d := New()
	d.Add(&Node{Name: "n"})
	r := NewRunner(d)
	r.Run(func(Result) {})
	if err := r.Run(func(Result) {}); !errors.Is(err, ErrRunning) {
		t.Fatalf("second run err = %v", err)
	}
}

func TestEmptyWorkNodesOrderOnly(t *testing.T) {
	d := New()
	d.Add(&Node{Name: "start"})
	d.Add(&Node{Name: "end"})
	d.AddEdge("start", "end")
	var res Result
	NewRunner(d).Run(func(r Result) { res = r })
	if !res.Succeeded() || len(res.Done) != 2 {
		t.Fatalf("res = %+v", res)
	}
}

func TestDoubleCompletionPanics(t *testing.T) {
	d := New()
	var savedDone func(error)
	d.Add(&Node{Name: "n", Work: func(done func(error)) {
		savedDone = done
		done(nil)
	}})
	NewRunner(d).Run(func(Result) {})
	defer func() {
		if recover() == nil {
			t.Fatal("double completion did not panic")
		}
	}()
	savedDone(nil)
}

func TestLargeChain(t *testing.T) {
	// SDSS-style workflow: "several thousand processing steps" (§4.3).
	d := New()
	const n = 3000
	var count int
	for i := 0; i < n; i++ {
		d.Add(&Node{Name: fmt.Sprintf("step%04d", i), Work: func(done func(error)) {
			count++
			done(nil)
		}})
	}
	for i := 1; i < n; i++ {
		d.AddEdge(fmt.Sprintf("step%04d", i-1), fmt.Sprintf("step%04d", i))
	}
	var res Result
	if err := NewRunner(d).Run(func(r Result) { res = r }); err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded() || count != n {
		t.Fatalf("count = %d, res ok = %v", count, res.Succeeded())
	}
}

func TestOnNodeRetryHook(t *testing.T) {
	d := New()
	attempts := 0
	flaky := &Node{Name: "flaky", Retries: 2, Work: func(done func(error)) {
		attempts++
		if attempts < 3 {
			done(errors.New("site down"))
			return
		}
		done(nil)
	}}
	if err := d.Add(flaky); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(d)
	type retry struct {
		node    string
		attempt int
	}
	var seen []retry
	r.OnNodeRetry = func(node string, attempt int, err error) {
		if err == nil {
			t.Fatal("retry hook fired without an error")
		}
		seen = append(seen, retry{node, attempt})
	}
	var res Result
	r.Run(func(out Result) { res = out })
	if !res.Succeeded() {
		t.Fatalf("result = %+v", res)
	}
	want := []retry{{"flaky", 1}, {"flaky", 2}}
	if len(seen) != len(want) {
		t.Fatalf("retry hook calls = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("retry %d = %+v, want %+v", i, seen[i], want[i])
		}
	}
}

func TestOnNodeRetryNotCalledOnFinalFailure(t *testing.T) {
	d := New()
	if err := d.Add(&Node{Name: "doomed", Retries: 0, Work: func(done func(error)) {
		done(errors.New("disk full"))
	}}); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(d)
	called := 0
	r.OnNodeRetry = func(string, int, error) { called++ }
	var res Result
	r.Run(func(out Result) { res = out })
	if res.Succeeded() {
		t.Fatal("expected failure")
	}
	if called != 0 {
		t.Fatalf("retry hook fired %d times on a node with no retries", called)
	}
}
