package dagman

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// TestRunAccountingProperty: for random layered DAGs with random per-node
// failures, every node ends in exactly one terminal state, failures never
// have successful descendants, and Done+Failed+Unrunnable == Len.
func TestRunAccountingProperty(t *testing.T) {
	f := func(layerSizes []uint8, failMask uint32, edges []uint16) bool {
		d := New()
		var layers [][]string
		nodeCount := 0
		edgeIdx := 0
		nextEdge := func(n int) int {
			if n <= 0 || edgeIdx >= len(edges) {
				return 0
			}
			v := int(edges[edgeIdx]) % n
			edgeIdx++
			return v
		}
		fails := map[string]bool{}
		for li, szRaw := range layerSizes {
			if li >= 4 {
				break
			}
			sz := int(szRaw%4) + 1
			var names []string
			for k := 0; k < sz; k++ {
				nodeCount++
				name := fmt.Sprintf("n%02d", nodeCount)
				failing := failMask&(1<<(uint(nodeCount)%32)) != 0
				fails[name] = failing
				d.Add(&Node{Name: name, Work: func(done func(error)) {
					if failing {
						done(errors.New("boom"))
						return
					}
					done(nil)
				}})
				if li > 0 {
					prev := layers[li-1]
					d.AddEdge(prev[nextEdge(len(prev))], name)
				}
				names = append(names, name)
			}
			layers = append(layers, names)
		}
		if d.Len() == 0 {
			return true
		}
		var res Result
		if err := NewRunner(d).Run(func(r Result) { res = r }); err != nil {
			return false
		}
		if len(res.Done)+len(res.Failed)+len(res.Unrunnable) != d.Len() {
			return false
		}
		// Every failed node actually failed; every done node didn't.
		for _, name := range res.Failed {
			if !fails[name] {
				return false
			}
		}
		for _, name := range res.Done {
			if fails[name] {
				return false
			}
		}
		// No done node has a failed/unrunnable ancestor.
		state := map[string]NodeState{}
		for _, name := range d.Names() {
			n, _ := d.Node(name)
			state[name] = n.State()
		}
		for _, name := range d.Names() {
			n, _ := d.Node(name)
			if n.State() != NodeDone {
				continue
			}
			for _, p := range n.parents {
				if p.State() != NodeDone {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}
