package sim

import (
	"fmt"
	"time"
)

// timerWheel is the fast path for fixed-interval periodic work — the
// Ganglia/MonALISA collection cycles, Condor-G negotiation, MDS soft-state
// expiry, and site probes that account for most of a campaign's queue
// traffic. Instead of re-pushing a fresh closure into the main event heap on
// every tick (the dominant cost of the old container/heap engine), each
// periodic timer lives in this small dedicated 4-ary heap: a re-arm is an
// O(log₄ m) sift among the ~10² active timers rather than an O(log n)
// insert into the ~10⁴–10⁵-entry event queue, and allocates nothing.
//
// Determinism is preserved because timers share the engine's (at, seq)
// ordering domain: a re-armed timer draws a fresh sequence number at exactly
// the point the old Ticker's re-schedule did, so an engine with the wheel
// fires the same callbacks in the same order as one without it.
type timerWheel struct {
	h       []ptimer
	slots   []timerSlot
	free    []uint32
	stopped int // stopped timers still occupying h
}

// ptimer is one periodic timer, keyed by its next fire time.
type ptimer struct {
	at       time.Duration
	seq      uint64
	interval time.Duration
	fn       func()
	id       uint32
}

// timerSlot carries the cancel state; like event slots, timer ids are
// generation-checked so stale handles are harmless.
type timerSlot struct {
	gen     uint32
	stopped bool
}

// Timer is a handle to a periodic timer. The zero Timer is invalid.
type Timer struct {
	eng *Engine
	id  uint32
	gen uint32
}

// Valid reports whether the handle refers to a registered timer.
func (t Timer) Valid() bool { return t.eng != nil }

// Stop prevents all future firings. Safe to call repeatedly, from the
// timer's own callback, and on the zero Timer.
func (t Timer) Stop() {
	if t.eng == nil {
		return
	}
	w := &t.eng.wheel
	s := &w.slots[t.id]
	if s.gen != t.gen || s.stopped {
		return
	}
	s.stopped = true
	w.stopped++
}

// Active reports whether the timer will still fire.
func (t Timer) Active() bool {
	if t.eng == nil {
		return false
	}
	s := &t.eng.wheel.slots[t.id]
	return s.gen == t.gen && !s.stopped
}

// Periodic registers fn to run every interval, first firing one full
// interval from now. This is the timer-wheel fast path: prefer it (or a
// Ticker, which uses it automatically) over manually re-scheduling.
func (e *Engine) Periodic(interval time.Duration, fn func()) Timer {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive timer interval %v", interval))
	}
	if fn == nil {
		panic("sim: nil timer function")
	}
	w := &e.wheel
	var id uint32
	if n := len(w.free); n > 0 {
		id = w.free[n-1]
		w.free = w.free[:n-1]
	} else {
		w.slots = append(w.slots, timerSlot{})
		id = uint32(len(w.slots) - 1)
	}
	e.seq++
	w.push(ptimer{at: e.now + interval, seq: e.seq, interval: interval, fn: fn, id: id})
	return Timer{eng: e, id: id, gen: w.slots[id].gen}
}

// active returns the number of timers that will still fire.
func (w *timerWheel) active() int { return len(w.h) - w.stopped }

// retire frees a timer's slot for reuse under the next generation.
func (w *timerWheel) retire(id uint32) {
	s := &w.slots[id]
	s.gen++
	s.stopped = false
	w.free = append(w.free, id)
}

// peek returns the earliest live timer, lazily discarding stopped ones that
// surface at the root.
func (w *timerWheel) peek() (ptimer, bool) {
	for len(w.h) > 0 {
		t := w.h[0]
		if !w.slots[t.id].stopped {
			return t, true
		}
		w.pop()
		w.retire(t.id)
		w.stopped--
	}
	return ptimer{}, false
}

// fire runs the root timer's callback and re-arms it. The engine has already
// advanced the clock and verified via peek that the root is live.
func (w *timerWheel) fire(e *Engine) {
	t := w.h[0]
	w.pop()
	t.fn()
	if w.slots[t.id].stopped { // stopped from within its own callback
		w.retire(t.id)
		w.stopped--
		return
	}
	t.at += t.interval
	e.seq++
	t.seq = e.seq
	w.push(t)
}

func tless(a, b ptimer) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (w *timerWheel) push(t ptimer) {
	w.h = append(w.h, t)
	i := len(w.h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !tless(t, w.h[parent]) {
			break
		}
		w.h[i] = w.h[parent]
		i = parent
	}
	w.h[i] = t
}

func (w *timerWheel) pop() {
	n := len(w.h) - 1
	t := w.h[n]
	w.h[n] = ptimer{}
	w.h = w.h[:n]
	if n == 0 {
		return
	}
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if tless(w.h[c], w.h[min]) {
				min = c
			}
		}
		if !tless(w.h[min], t) {
			break
		}
		w.h[i] = w.h[min]
		i = min
	}
	w.h[i] = t
}
