// Conservative-window parallel execution. A ShardGroup runs one Engine per
// region shard, each on its own goroutine, and synchronizes them with
// conservative time windows sized by the simulation's minimum cross-shard
// latency (for Grid3, the minimum WAN link latency): within a window no
// shard can affect another, so the shards may run concurrently without any
// speculation or rollback.
//
// Cross-shard events are not scheduled directly into the destination engine.
// The sending shard posts them to a per-shard outbox during its window; at
// the window barrier the group drains every outbox and delivers the events
// in an order that is a pure function of (timestamp, source shard ID, send
// order) — never of goroutine interleaving. Each destination engine then
// assigns its own (at, seq) keys in that delivery order, so a run with N
// shards executes the same events in the same order as a run with one, and
// same-seed runs stay byte-identical regardless of shard count.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// ShardStats accumulates the group's execution accounting.
type ShardStats struct {
	// Windows is the number of barrier-to-barrier rounds executed.
	Windows uint64
	// CrossEvents is the number of events exchanged between shards.
	CrossEvents uint64
	// BusyNs is the summed wall-clock time the shard goroutines spent
	// executing events (the total work).
	BusyNs int64
	// CriticalNs is the summed per-window maximum shard time — the
	// critical path a perfectly parallel execution cannot beat.
	CriticalNs int64
}

// Speedup returns the work-parallelism of the run: total shard work divided
// by its critical path. It is the wall-clock speedup the sharded run
// converges to once GOMAXPROCS covers the shard count; on fewer cores the
// ratio still measures how evenly the windows balanced.
func (s ShardStats) Speedup() float64 {
	if s.CriticalNs <= 0 {
		return 1
	}
	return float64(s.BusyNs) / float64(s.CriticalNs)
}

// crossEvent is one outbox entry: an event posted by one shard for another.
type crossEvent struct {
	at   time.Duration
	seq  uint64 // per-source send order
	from int
	to   int
	fn   func()
}

// shardWorker is one shard's persistent goroutine plus its window state.
type shardWorker struct {
	eng    *Engine
	outbox []crossEvent
	sent   uint64 // send-order counter, reset never (monotonic per shard)
	busy   int64  // wall ns spent inside the current window
	fault  any    // panic value recovered from the window, if any
	run    chan time.Duration
}

// runWindow advances the shard to end, converting a callback panic (a
// lookahead violation, or a bug in user code) into a recorded fault so the
// barrier can re-raise it on the caller's goroutine instead of killing the
// process from a worker.
func (w *shardWorker) runWindow(end time.Duration) {
	defer func() { w.fault = recover() }()
	w.eng.RunUntil(end)
}

// ShardGroup owns the sharded engines and the window barrier.
type ShardGroup struct {
	window  time.Duration
	workers []*shardWorker
	wg      sync.WaitGroup
	stats   ShardStats

	// windowEnd is the inclusive end of the window currently executing;
	// Post validates lookahead against it. Written only between windows,
	// read by shard goroutines during one; the WaitGroup orders the two.
	windowEnd time.Duration
	closed    bool
}

// NewShardGroup creates shards engines sharing an epoch, synchronized with
// conservative windows of the given length. The window must equal (or be
// below) the minimum latency of any cross-shard interaction: Post enforces
// that every cross-shard event lands strictly after the window in which it
// was sent.
func NewShardGroup(shards int, window time.Duration, epoch time.Time) *ShardGroup {
	if shards < 1 {
		panic(fmt.Sprintf("sim: shard count %d < 1", shards))
	}
	if window <= 0 {
		panic(fmt.Sprintf("sim: non-positive shard window %v", window))
	}
	g := &ShardGroup{window: window}
	for i := 0; i < shards; i++ {
		w := &shardWorker{eng: NewEngine(epoch), run: make(chan time.Duration)}
		g.workers = append(g.workers, w)
		go func() {
			for end := range w.run {
				t0 := time.Now()
				w.runWindow(end)
				w.busy = time.Since(t0).Nanoseconds()
				g.wg.Done()
			}
		}()
	}
	return g
}

// Shards returns the shard count.
func (g *ShardGroup) Shards() int { return len(g.workers) }

// Shard returns shard i's engine. Callers may schedule events on it freely
// between Run calls (the setup phase) and from within that shard's own
// callbacks; scheduling on another shard's engine from a callback is a race
// — use Post.
func (g *ShardGroup) Shard(i int) *Engine { return g.workers[i].eng }

// Window returns the conservative window length.
func (g *ShardGroup) Window() time.Duration { return g.window }

// Stats returns the accounting accumulated by Run so far.
func (g *ShardGroup) Stats() ShardStats { return g.stats }

// Post sends fn from shard `from` to shard `to`, to fire at absolute time
// at. It must be called from shard from's own callbacks (or between Run
// calls). The event is buffered in the sender's outbox and delivered at the
// next window barrier; at must lie strictly after the current window, which
// holds by construction when the simulated latency is at least the window
// length. A violation means the declared minimum latency was wrong and the
// parallel run could diverge from the serial one, so it panics.
func (g *ShardGroup) Post(from, to int, at time.Duration, fn func()) {
	if fn == nil {
		panic("sim: nil cross-shard event function")
	}
	if to < 0 || to >= len(g.workers) {
		panic(fmt.Sprintf("sim: cross-shard destination %d outside [0,%d)", to, len(g.workers)))
	}
	w := g.workers[from]
	if at <= g.windowEnd {
		panic(fmt.Sprintf("sim: lookahead violation: shard %d posts event at %v inside window ending %v",
			from, at, g.windowEnd))
	}
	w.sent++
	w.outbox = append(w.outbox, crossEvent{at: at, seq: w.sent, from: from, to: to, fn: fn})
}

// Run advances every shard to time t. Windows are conservative but
// activity-sized: each round ends one window past the earliest pending
// event across all shards, so idle stretches cost one barrier instead of
// many. Deterministic given deterministic shard workloads: goroutine
// scheduling can only change wall-clock accounting, never event order.
func (g *ShardGroup) Run(t time.Duration) {
	if g.closed {
		panic("sim: Run on closed ShardGroup")
	}
	for {
		// Deliver anything posted since the last barrier (the setup phase
		// between Run calls may Post too), then find the earliest pending
		// work across shards.
		g.deliver()
		earliest := time.Duration(-1)
		for _, w := range g.workers {
			if at, ok := w.eng.NextEventAt(); ok && (earliest < 0 || at < earliest) {
				earliest = at
			}
		}
		if earliest < 0 || earliest > t {
			break // idle: jump every clock straight to t below
		}
		// The window covers (prev, end]: no event before `earliest` exists,
		// so nothing can be sent before it, and with latency ≥ window every
		// send lands at > end. The -1ns keeps an event at exactly
		// earliest+window out of this window (it could race a cross event
		// with the same timestamp).
		end := earliest + g.window - time.Nanosecond
		if end > t {
			end = t
		}
		g.windowEnd = end
		g.wg.Add(len(g.workers))
		for _, w := range g.workers {
			w.run <- end
		}
		g.wg.Wait()
		g.stats.Windows++
		maxBusy := int64(0)
		for _, w := range g.workers {
			if w.fault != nil {
				panic(w.fault)
			}
			g.stats.BusyNs += w.busy
			if w.busy > maxBusy {
				maxBusy = w.busy
			}
		}
		g.stats.CriticalNs += maxBusy
	}
	for _, w := range g.workers {
		w.eng.RunUntil(t)
	}
	g.windowEnd = t
}

// deliver drains every outbox into the destination engines in merge order:
// (timestamp, source shard ID, per-source send order). The destination
// engine's own sequence numbers then encode that order, so simultaneous
// cross events from different shards always fire in ascending shard-ID
// order — a pure function of shard ID, independent of which goroutine
// finished its window first.
func (g *ShardGroup) deliver() {
	var all []crossEvent
	for _, w := range g.workers {
		all = append(all, w.outbox...)
		w.outbox = w.outbox[:0]
	}
	if len(all) == 0 {
		return
	}
	// Insertion sort: outboxes are each already in (monotone seq) send
	// order and cross traffic per window is small.
	for i := 1; i < len(all); i++ {
		ev := all[i]
		j := i - 1
		for j >= 0 && crossLess(ev, all[j]) {
			all[j+1] = all[j]
			j--
		}
		all[j+1] = ev
	}
	for _, ev := range all {
		g.workers[ev.to].eng.At(ev.at, ev.fn)
		g.stats.CrossEvents++
	}
}

func crossLess(a, b crossEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.from != b.from {
		return a.from < b.from
	}
	return a.seq < b.seq
}

// Close stops the shard goroutines. The group is unusable afterwards.
func (g *ShardGroup) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for _, w := range g.workers {
		close(w.run)
	}
}
