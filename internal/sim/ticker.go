package sim

import "time"

// Ticker invokes a callback at a fixed virtual-time interval until stopped.
// Grid3 uses tickers for monitoring collection cycles, site-catalog probes,
// the Condor exerciser's 15-minute backfill runs, and soft-state refresh.
type Ticker struct {
	sched    Scheduler
	interval time.Duration
	fn       func()
	pending  *Event
	stopped  bool
	fires    int
}

// NewTicker schedules fn every interval, with the first firing one full
// interval from now. Stop the ticker to release it.
func NewTicker(s Scheduler, interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{sched: s, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.pending = t.sched.Schedule(t.interval, func() {
		if t.stopped {
			return
		}
		t.fires++
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop prevents all future firings. Safe to call more than once, including
// from within the ticker's own callback.
func (t *Ticker) Stop() {
	t.stopped = true
}

// Fires returns how many times the ticker has fired.
func (t *Ticker) Fires() int { return t.fires }
