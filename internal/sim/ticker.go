package sim

import "time"

// Ticker invokes a callback at a fixed virtual-time interval until stopped.
// Grid3 uses tickers for monitoring collection cycles, site-catalog probes,
// the Condor exerciser's 15-minute backfill runs, and soft-state refresh.
//
// When the Scheduler is a *Engine the ticker rides the engine's timer-wheel
// fast path, so each tick re-arms without touching the main event queue or
// allocating. Against any other Scheduler it falls back to re-scheduling.
type Ticker struct {
	sched    Scheduler
	interval time.Duration
	fn       func()
	timer    Timer // wheel fast path, when sched is a *Engine
	stopped  bool
	fires    int
}

// NewTicker schedules fn every interval, with the first firing one full
// interval from now. Stop the ticker to release it.
func NewTicker(s Scheduler, interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{sched: s, interval: interval, fn: fn}
	if eng, ok := s.(*Engine); ok {
		t.timer = eng.Periodic(interval, t.tick)
	} else {
		t.arm()
	}
	return t
}

func (t *Ticker) tick() {
	t.fires++
	t.fn()
}

// arm is the slow path for non-Engine Schedulers.
func (t *Ticker) arm() {
	t.sched.Schedule(t.interval, func() {
		if t.stopped {
			return
		}
		t.tick()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop prevents all future firings. Safe to call more than once, including
// from within the ticker's own callback.
func (t *Ticker) Stop() {
	t.stopped = true
	t.timer.Stop()
}

// Fires returns how many times the ticker has fired.
func (t *Ticker) Fires() int { return t.fires }
