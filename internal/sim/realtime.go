package sim

import (
	"fmt"
	"time"
)

// Governor maps wall-clock time onto the virtual clock so an Engine can run
// continuously in scaled real time: pace virtual seconds elapse per wall
// second. The governor itself is pure arithmetic over an anchor point — it
// never sleeps, never reads the system clock, and holds no reference to the
// engine — so pacing decisions are testable with synthetic instants and the
// serve loop stays the single owner of real time.
//
// The contract with the driving loop is open-loop catch-up: Target reports
// where the virtual clock should be now; if the engine has fallen behind
// (a burst of events took longer than the pace allowed), the loop runs the
// engine as fast as it can toward the target until the lag is repaid. The
// loop may bound each catch-up stride to stay responsive to ingress between
// steps; the governor keeps accounting for the shortfall either way.
type Governor struct {
	pace       float64 // virtual seconds per wall second
	anchorWall time.Time
	anchorSim  time.Duration
}

// NewGovernor anchors a governor: at wall instant wallNow the virtual clock
// reads simNow, and from then on advances pace virtual seconds per wall
// second. Pace must be positive.
func NewGovernor(pace float64, simNow time.Duration, wallNow time.Time) *Governor {
	if pace <= 0 {
		panic(fmt.Sprintf("sim: governor pace %v must be positive", pace))
	}
	return &Governor{pace: pace, anchorWall: wallNow, anchorSim: simNow}
}

// Pace returns the current compression ratio (virtual seconds per wall
// second).
func (g *Governor) Pace() float64 { return g.pace }

// Target returns the virtual time the engine should have reached at wall
// instant wallNow. Instants before the anchor clamp to the anchor's virtual
// time (the schedule never runs backward).
func (g *Governor) Target(wallNow time.Time) time.Duration {
	elapsed := wallNow.Sub(g.anchorWall)
	if elapsed <= 0 {
		return g.anchorSim
	}
	return g.anchorSim + time.Duration(float64(elapsed)*g.pace)
}

// Lag returns how far the engine's clock trails the schedule at wallNow —
// zero when the engine is caught up (or ahead, which RunUntil never
// produces). Sustained positive lag means the workload emits events faster
// than the host can execute them at this pace.
func (g *Governor) Lag(simNow time.Duration, wallNow time.Time) time.Duration {
	if t := g.Target(wallNow); t > simNow {
		return t - simNow
	}
	return 0
}

// Repace re-anchors the governor at (simNow, wallNow) with a new pace —
// the hot-reload path. Re-anchoring forgives any accumulated lag: the
// schedule restarts from wherever the engine actually is, so a pace change
// never triggers a catch-up burst. Pace must be positive.
func (g *Governor) Repace(pace float64, simNow time.Duration, wallNow time.Time) {
	if pace <= 0 {
		panic(fmt.Sprintf("sim: governor pace %v must be positive", pace))
	}
	g.pace = pace
	g.anchorWall = wallNow
	g.anchorSim = simNow
}

// Forgive re-anchors at the current position without changing pace,
// discarding accumulated lag. Serve loops call it when lag exceeds their
// catch-up budget: the simulation slips relative to wall time rather than
// freezing ingress for the duration of an unbounded replay burst.
func (g *Governor) Forgive(simNow time.Duration, wallNow time.Time) {
	g.anchorWall = wallNow
	g.anchorSim = simNow
}
