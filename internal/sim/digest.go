package sim

import "grid3/internal/checkpoint"

// HashState folds the engine's complete deterministic state into h: the
// clock, the scheduling sequence counter, lifetime event counters, and the
// scheduling keys of every pending event — the heap array in layout order,
// the arena occupancy, and every timer-wheel entry. Two engines that have
// executed identical event sequences walk to identical sums, because every
// heap and arena operation is itself deterministic.
//
// Event callbacks (closures) are intentionally outside the walk: restore
// rebuilds them by replay, and their scheduling keys (at, seq) — which are
// covered — pin exactly when and in what order they fire.
func (e *Engine) HashState(h *checkpoint.Hasher) {
	h.Dur(e.now)
	h.Word(e.seq)
	h.Word(e.processed)
	h.Word(e.discarded)
	h.Int(int64(e.live))
	h.Int(int64(e.cancelled))
	h.Int(int64(len(e.q)))
	for _, it := range e.q {
		h.Dur(it.at)
		h.Word(it.seq)
	}
	h.Int(int64(len(e.slots)))
	h.Int(int64(len(e.freeSlots)))
	w := &e.wheel
	h.Int(int64(len(w.h)))
	for _, t := range w.h {
		h.Dur(t.at)
		h.Word(t.seq)
		h.Dur(t.interval)
	}
	h.Int(int64(len(w.slots)))
	h.Int(int64(w.stopped))
}
