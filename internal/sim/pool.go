package sim

import (
	"fmt"
	"sync"
	"time"
)

// EvalPool is a deterministic fork-join helper for the engine's pure
// evaluation phases. The single simulation goroutine calls Map to fan a
// read-only computation out over N chunks — one per region shard — and
// blocks until every chunk finishes; all mutation stays in the caller, so
// the reduction it performs afterwards sees results in chunk order and the
// outcome is independent of which worker ran first. This is how the sharded
// grid parallelizes work whose *inputs* partition by region but whose
// *commit* must stay serial (Condor-G matchmaking: the candidate scan is
// pure per region, the launch that follows mutates shared hub state).
//
// The pool accumulates the same work/critical-path accounting as a
// ShardGroup, so `parallel_speedup` means one thing everywhere: total chunk
// work divided by the critical path.
type EvalPool struct {
	workers []chan func()
	wg      sync.WaitGroup
	// elapsed[w] is written only by worker w during a Map call and read by
	// the caller after the barrier, so it needs no lock.
	elapsed []int64
	stats   ShardStats
	closed  bool
}

// NewEvalPool starts workers persistent worker goroutines.
func NewEvalPool(workers int) *EvalPool {
	if workers < 1 {
		panic(fmt.Sprintf("sim: eval pool worker count %d < 1", workers))
	}
	p := &EvalPool{elapsed: make([]int64, workers)}
	for i := 0; i < workers; i++ {
		ch := make(chan func())
		p.workers = append(p.workers, ch)
		go func() {
			for fn := range ch {
				fn()
			}
		}()
	}
	return p
}

// Workers returns the worker count.
func (p *EvalPool) Workers() int { return len(p.workers) }

// Map runs f(0..n-1) across the workers and returns when all calls have
// finished. f must only read shared state, or mutate state no other chunk
// touches (region-partitioned caches); the caller resumes with a full
// happens-before edge from every call. Chunk i runs on worker i%Workers, so
// with n == Workers each chunk owns a worker. A nil pool, a closed pool, or
// n < 2 degrades to a plain serial loop — the outcome is identical either
// way, only the wall-clock cost changes.
func (p *EvalPool) Map(n int, f func(chunk int)) {
	if p == nil || p.closed || n < 2 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	for i := range p.elapsed {
		p.elapsed[i] = 0
	}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		w := i % len(p.workers)
		p.workers[w] <- func() {
			t0 := time.Now()
			f(i)
			p.elapsed[w] += time.Since(t0).Nanoseconds()
			p.wg.Done()
		}
	}
	p.wg.Wait()
	var maxNs int64
	for _, d := range p.elapsed {
		p.stats.BusyNs += d
		if d > maxNs {
			maxNs = d
		}
	}
	p.stats.Windows++
	p.stats.CriticalNs += maxNs
}

// Stats returns the accounting accumulated across Map calls.
func (p *EvalPool) Stats() ShardStats {
	if p == nil {
		return ShardStats{}
	}
	return p.stats
}

// Close stops the workers. The pool is unusable afterwards.
func (p *EvalPool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.workers {
		close(ch)
	}
}
