package sim

import (
	"testing"
	"time"
)

func TestEvalPoolMap(t *testing.T) {
	p := NewEvalPool(4)
	defer p.Close()
	out := make([]int, 16) // each chunk writes only its own slot
	p.Map(len(out), func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("chunk %d wrote %d, want %d", i, v, i*i)
		}
	}
	st := p.Stats()
	if st.Windows != 1 {
		t.Fatalf("stats windows %d, want 1", st.Windows)
	}
	if st.BusyNs < st.CriticalNs {
		t.Fatalf("busy %dns < critical %dns", st.BusyNs, st.CriticalNs)
	}
}

func TestEvalPoolDeterministicReduction(t *testing.T) {
	// The canonical use: chunks compute independent partial results, the
	// caller reduces them in chunk order. Repeated calls must agree exactly.
	p := NewEvalPool(3)
	defer p.Close()
	run := func() float64 {
		parts := make([]float64, 3)
		p.Map(3, func(c int) {
			v := 0.0
			for i := 0; i < 1000; i++ {
				v += float64(c*1000+i) * 1e-3
			}
			parts[c] = v
		})
		total := 0.0
		for _, v := range parts { // fixed chunk order
			total += v
		}
		return total
	}
	a := run()
	for i := 0; i < 10; i++ {
		if b := run(); b != a {
			t.Fatalf("run %d reduced to %v, first run %v", i, b, a)
		}
	}
}

func TestEvalPoolSerialFallback(t *testing.T) {
	var p *EvalPool // nil pool: plain loop
	n := 0
	p.Map(5, func(i int) { n += i })
	if n != 10 {
		t.Fatalf("nil-pool Map summed %d, want 10", n)
	}
	if st := p.Stats(); st != (ShardStats{}) {
		t.Fatalf("nil-pool stats %+v, want zero", st)
	}
	q := NewEvalPool(2)
	defer q.Close()
	n = 0
	q.Map(1, func(i int) { n++ }) // n<2 runs inline on the caller
	if n != 1 {
		t.Fatal("single-chunk Map did not run")
	}
	if st := q.Stats(); st.Windows != 0 {
		t.Fatalf("inline Map accounted a window: %+v", st)
	}
}

func TestEvalPoolCriticalPath(t *testing.T) {
	p := NewEvalPool(2)
	defer p.Close()
	p.Map(2, func(i int) {
		if i == 1 {
			time.Sleep(5 * time.Millisecond)
		}
	})
	st := p.Stats()
	if st.CriticalNs < (4 * time.Millisecond).Nanoseconds() {
		t.Fatalf("critical path %dns shorter than the slowest chunk", st.CriticalNs)
	}
	if st.BusyNs < st.CriticalNs {
		t.Fatalf("busy %dns < critical %dns", st.BusyNs, st.CriticalNs)
	}
}
