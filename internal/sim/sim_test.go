package sim

import (
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	var fired []time.Duration
	e.Schedule(time.Second, func() {
		fired = append(fired, e.Now())
		e.Schedule(time.Second, func() {
			fired = append(fired, e.Now())
		})
	})
	e.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("nested schedule times = %v", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	ran := false
	ev := e.Schedule(time.Second, func() { ran = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Run()
	if ran {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	var fired []int
	e.Schedule(1*time.Hour, func() { fired = append(fired, 1) })
	e.Schedule(2*time.Hour, func() { fired = append(fired, 2) })
	e.Schedule(3*time.Hour, func() { fired = append(fired, 3) })
	e.RunUntil(2 * time.Hour)
	if len(fired) != 2 {
		t.Fatalf("RunUntil fired %v, want events at 1h and 2h", fired)
	}
	if e.Now() != 2*time.Hour {
		t.Fatalf("clock after RunUntil = %v", e.Now())
	}
	e.RunFor(1 * time.Hour)
	if len(fired) != 3 {
		t.Fatalf("RunFor did not fire remaining event: %v", fired)
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	e.RunUntil(5 * time.Hour)
	if e.Now() != 5*time.Hour {
		t.Fatalf("idle clock = %v, want 5h", e.Now())
	}
}

func TestEngineWallClock(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	e.RunUntil(24 * time.Hour)
	want := time.Date(2003, time.October, 24, 0, 0, 0, 0, time.UTC)
	if !e.WallClock().Equal(want) {
		t.Fatalf("WallClock = %v, want %v", e.WallClock(), want)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	e.RunUntil(time.Hour)
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	e.At(time.Minute, func() {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.Schedule(-time.Second, func() {})
}

func TestEngineProcessedCount(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	for i := 0; i < 5; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {})
	}
	e.Run()
	if e.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5", e.Processed())
	}
}

func TestTickerFiresAtInterval(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	var times []time.Duration
	tk := NewTicker(e, 15*time.Minute, func() { times = append(times, e.Now()) })
	e.RunUntil(time.Hour)
	tk.Stop()
	e.RunUntil(2 * time.Hour)
	if len(times) != 4 {
		t.Fatalf("ticker fired %d times in 1h at 15m interval, want 4: %v", len(times), times)
	}
	for i, at := range times {
		want := time.Duration(i+1) * 15 * time.Minute
		if at != want {
			t.Fatalf("fire %d at %v, want %v", i, at, want)
		}
	}
	if tk.Fires() != 4 {
		t.Fatalf("Fires = %d, want 4", tk.Fires())
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	var tk *Ticker
	count := 0
	tk = NewTicker(e, time.Minute, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("ticker fired %d times after self-stop at 3", count)
	}
}

func TestReentrantRunPanics(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	e.Schedule(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		e.Run()
	})
	e.Run()
}

func TestEnginePendingExcludesCancelled(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	evs := make([]Event, 10)
	for i := range evs {
		evs[i] = e.Schedule(time.Duration(i+1)*time.Second, func() {})
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	for i := 0; i < 4; i++ {
		e.Cancel(evs[i])
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending after 4 cancels = %d, want 6 (cancelled must not count)", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after Run = %d", e.Pending())
	}
	if e.Processed() != 6 {
		t.Fatalf("Processed = %d, want 6", e.Processed())
	}
	if e.Discarded() != 4 {
		t.Fatalf("Discarded = %d, want 4 (cancelled events count as housekeeping)", e.Discarded())
	}
}

func TestEngineSlotReuseKeepsStaleHandlesSafe(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	fired := 0
	stale := e.Schedule(time.Second, func() { fired++ })
	e.Run()
	// The slot is free now; the next event reuses it under a new generation.
	fresh := e.Schedule(time.Second, func() { fired++ })
	if stale.Pending() {
		t.Fatal("fired event still reports pending")
	}
	stale.Cancel() // must not cancel the slot's new occupant
	if fresh.Cancelled() || !fresh.Pending() {
		t.Fatal("stale Cancel aliased the reused slot")
	}
	if stale.Cancelled() {
		t.Fatal("fired event reports cancelled")
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestEngineScheduleDoesNotAllocate(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	fn := func() {}
	// Warm the arena and heap so growth is amortized away.
	for i := 0; i < 1024; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(time.Millisecond, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+step allocates %.1f objects/op, want 0", allocs)
	}
}

func TestEngineCompaction(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	var keep []Event
	var cancel []Event
	for i := 0; i < 300; i++ {
		ev := e.Schedule(time.Duration(i+1)*time.Second, func() {})
		if i%3 == 0 {
			keep = append(keep, ev)
		} else {
			cancel = append(cancel, ev)
		}
	}
	for _, ev := range cancel {
		ev.Cancel()
	}
	// Cancelling 200 of 300 must have tripped compaction (at the point
	// cancellations exceeded half the queue); stragglers cancelled after
	// the pass stay lazily queued until they surface.
	if e.Discarded() == 0 {
		t.Fatal("compaction never triggered")
	}
	if e.Pending() != len(keep) {
		t.Fatalf("Pending = %d, want %d", e.Pending(), len(keep))
	}
	var fired int
	prev := time.Duration(-1)
	for e.Step() {
		if e.Now() <= prev {
			t.Fatalf("events fired out of order after compaction: %v after %v", e.Now(), prev)
		}
		prev = e.Now()
		fired++
	}
	if fired != len(keep) {
		t.Fatalf("fired %d, want %d", fired, len(keep))
	}
	if got := e.Discarded(); got != uint64(len(cancel)) {
		t.Fatalf("Discarded after drain = %d, want %d", got, len(cancel))
	}
	for _, ev := range keep {
		if ev.Cancelled() {
			t.Fatal("survivor reports cancelled")
		}
	}
}

func TestEngineHeapOrderRandomised(t *testing.T) {
	// A deterministic LCG shuffles insert order; the engine must still fire
	// in (time, seq) order. This exercises the 4-ary sift paths at depth.
	e := NewEngine(Grid3Epoch)
	const n = 5000
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	var fired []time.Duration
	for i := 0; i < n; i++ {
		at := time.Duration(next()%10000) * time.Millisecond
		e.At(at, func() { fired = append(fired, e.Now()) })
	}
	e.Run()
	if len(fired) != n {
		t.Fatalf("fired %d of %d", len(fired), n)
	}
	for i := 1; i < n; i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("out of order at %d: %v < %v", i, fired[i], fired[i-1])
		}
	}
}

func TestPeriodicTimerWheel(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	var ticks []time.Duration
	tm := e.Periodic(10*time.Minute, func() { ticks = append(ticks, e.Now()) })
	if !tm.Active() {
		t.Fatal("fresh timer inactive")
	}
	e.RunUntil(time.Hour)
	if len(ticks) != 6 {
		t.Fatalf("%d ticks in 1h at 10m, want 6: %v", len(ticks), ticks)
	}
	tm.Stop()
	tm.Stop() // double-stop is a no-op
	if tm.Active() {
		t.Fatal("stopped timer active")
	}
	e.RunUntil(2 * time.Hour)
	if len(ticks) != 6 {
		t.Fatalf("stopped timer kept firing: %d ticks", len(ticks))
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending with only a stopped timer = %d, want 0", e.Pending())
	}
}

// TestPeriodicInterleavesWithEvents pins the determinism contract across the
// two queues: wheel timers and one-shot events share the (time, seq) order.
// At 1m the tick fires first (registered before the event, so earlier seq);
// at 2m the event fires first, because the re-arm drew its seq only when the
// 1m tick completed — exactly as the legacy re-scheduling Ticker behaved.
func TestPeriodicInterleavesWithEvents(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	var order []string
	e.Periodic(time.Minute, func() { order = append(order, "tick") })
	e.At(time.Minute, func() { order = append(order, "event") })
	e.At(2*time.Minute, func() { order = append(order, "event") })
	e.RunUntil(2 * time.Minute)
	want := []string{"tick", "event", "event", "tick"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestTickerMatchesFallbackSchedule replays the same workload through the
// wheel fast path and the legacy re-scheduling path; the observable fire
// sequence must be identical.
func TestTickerMatchesFallbackSchedule(t *testing.T) {
	run := func(viaWheel bool) []time.Duration {
		e := NewEngine(Grid3Epoch)
		var fires []time.Duration
		fn := func() { fires = append(fires, e.Now()) }
		if viaWheel {
			NewTicker(e, 7*time.Minute, fn)
		} else {
			NewTicker(schedulerOnly{e}, 7*time.Minute, fn)
		}
		e.RunUntil(3 * time.Hour)
		return fires
	}
	wheel, legacy := run(true), run(false)
	if len(wheel) != len(legacy) {
		t.Fatalf("wheel fired %d, legacy %d", len(wheel), len(legacy))
	}
	for i := range wheel {
		if wheel[i] != legacy[i] {
			t.Fatalf("fire %d: wheel %v, legacy %v", i, wheel[i], legacy[i])
		}
	}
}

// schedulerOnly hides the *Engine concrete type so NewTicker takes the
// fallback path.
type schedulerOnly struct{ *Engine }

func TestZeroEventSafe(t *testing.T) {
	var ev Event
	if ev.Valid() || ev.Pending() || ev.Cancelled() {
		t.Fatal("zero Event not inert")
	}
	ev.Cancel() // must not panic
	var tm Timer
	if tm.Valid() || tm.Active() {
		t.Fatal("zero Timer not inert")
	}
	tm.Stop() // must not panic
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine(Grid3Epoch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i%1000)*time.Millisecond, func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}

func TestEnginePendingLiveCountInvariant(t *testing.T) {
	// Pending is maintained as an incremental live count, so it must track
	// the ground truth — scheduled minus fired minus cancelled, plus active
	// tickers — through every interaction: double cancels, cancels racing
	// compaction, lazy discards at the heap root, and timer-wheel ticks.
	e := NewEngine(Grid3Epoch)
	tick := NewTicker(e, 7*time.Second, func() {})

	check := func(want int, at string) {
		t.Helper()
		if got := e.Pending(); got != want {
			t.Fatalf("%s: Pending = %d, want %d", at, got, want)
		}
	}
	check(1, "ticker only")

	evs := make([]Event, 200)
	for i := range evs {
		evs[i] = e.Schedule(time.Duration(i+1)*time.Second, func() {})
	}
	check(201, "after scheduling")

	// Double-cancel and cancel-of-fired must not decrement twice.
	evs[0].Cancel()
	evs[0].Cancel()
	check(200, "after double cancel")

	// Cancel enough to trip compaction, then keep cancelling so lazy
	// discards at the root also exercise the count.
	for i := 1; i < 150; i++ {
		evs[i].Cancel()
	}
	check(51, "after mass cancel + compaction")

	e.RunUntil(200 * time.Second)
	// All 50 survivors (151..200s) fired; ticker still armed.
	check(1, "after drain")

	evs[160].Cancel() // already fired: must be a no-op on the count
	check(1, "after cancelling a fired event")

	tick.Stop()
	check(0, "after stopping the ticker")
}
