package sim

import (
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	var fired []time.Duration
	e.Schedule(time.Second, func() {
		fired = append(fired, e.Now())
		e.Schedule(time.Second, func() {
			fired = append(fired, e.Now())
		})
	})
	e.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("nested schedule times = %v", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	ran := false
	ev := e.Schedule(time.Second, func() { ran = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Run()
	if ran {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	var fired []int
	e.Schedule(1*time.Hour, func() { fired = append(fired, 1) })
	e.Schedule(2*time.Hour, func() { fired = append(fired, 2) })
	e.Schedule(3*time.Hour, func() { fired = append(fired, 3) })
	e.RunUntil(2 * time.Hour)
	if len(fired) != 2 {
		t.Fatalf("RunUntil fired %v, want events at 1h and 2h", fired)
	}
	if e.Now() != 2*time.Hour {
		t.Fatalf("clock after RunUntil = %v", e.Now())
	}
	e.RunFor(1 * time.Hour)
	if len(fired) != 3 {
		t.Fatalf("RunFor did not fire remaining event: %v", fired)
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	e.RunUntil(5 * time.Hour)
	if e.Now() != 5*time.Hour {
		t.Fatalf("idle clock = %v, want 5h", e.Now())
	}
}

func TestEngineWallClock(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	e.RunUntil(24 * time.Hour)
	want := time.Date(2003, time.October, 24, 0, 0, 0, 0, time.UTC)
	if !e.WallClock().Equal(want) {
		t.Fatalf("WallClock = %v, want %v", e.WallClock(), want)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	e.RunUntil(time.Hour)
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	e.At(time.Minute, func() {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.Schedule(-time.Second, func() {})
}

func TestEngineProcessedCount(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	for i := 0; i < 5; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {})
	}
	e.Run()
	if e.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5", e.Processed())
	}
}

func TestTickerFiresAtInterval(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	var times []time.Duration
	tk := NewTicker(e, 15*time.Minute, func() { times = append(times, e.Now()) })
	e.RunUntil(time.Hour)
	tk.Stop()
	e.RunUntil(2 * time.Hour)
	if len(times) != 4 {
		t.Fatalf("ticker fired %d times in 1h at 15m interval, want 4: %v", len(times), times)
	}
	for i, at := range times {
		want := time.Duration(i+1) * 15 * time.Minute
		if at != want {
			t.Fatalf("fire %d at %v, want %v", i, at, want)
		}
	}
	if tk.Fires() != 4 {
		t.Fatalf("Fires = %d, want 4", tk.Fires())
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	var tk *Ticker
	count := 0
	tk = NewTicker(e, time.Minute, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("ticker fired %d times after self-stop at 3", count)
	}
}

func TestReentrantRunPanics(t *testing.T) {
	e := NewEngine(Grid3Epoch)
	e.Schedule(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		e.Run()
	})
	e.Run()
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine(Grid3Epoch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i%1000)*time.Millisecond, func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}
