package sim

import (
	"testing"
	"time"
)

func TestGovernorTarget(t *testing.T) {
	wall0 := time.Date(2026, time.January, 1, 0, 0, 0, 0, time.UTC)
	g := NewGovernor(3600, 0, wall0) // one sim hour per wall second

	if got := g.Target(wall0); got != 0 {
		t.Fatalf("target at anchor = %v, want 0", got)
	}
	if got := g.Target(wall0.Add(time.Second)); got != time.Hour {
		t.Fatalf("target after 1s = %v, want 1h", got)
	}
	if got := g.Target(wall0.Add(90 * time.Second)); got != 90*time.Hour {
		t.Fatalf("target after 90s = %v, want 90h", got)
	}
	// Instants before the anchor clamp: the schedule never runs backward.
	if got := g.Target(wall0.Add(-time.Minute)); got != 0 {
		t.Fatalf("target before anchor = %v, want 0", got)
	}
}

func TestGovernorTargetNonZeroAnchor(t *testing.T) {
	wall0 := time.Unix(1000, 0)
	g := NewGovernor(2, 10*time.Minute, wall0)
	if got := g.Target(wall0.Add(30 * time.Second)); got != 10*time.Minute+time.Minute {
		t.Fatalf("target = %v, want 11m", got)
	}
}

func TestGovernorLag(t *testing.T) {
	wall0 := time.Unix(0, 0)
	g := NewGovernor(60, 0, wall0) // one sim minute per wall second

	at := wall0.Add(10 * time.Second) // schedule says 10 sim minutes
	if lag := g.Lag(4*time.Minute, at); lag != 6*time.Minute {
		t.Fatalf("lag = %v, want 6m", lag)
	}
	// Caught up (or ahead): lag clamps to zero.
	if lag := g.Lag(10*time.Minute, at); lag != 0 {
		t.Fatalf("lag when caught up = %v, want 0", lag)
	}
	if lag := g.Lag(15*time.Minute, at); lag != 0 {
		t.Fatalf("lag when ahead = %v, want 0", lag)
	}
}

func TestGovernorRepaceForgivesLag(t *testing.T) {
	wall0 := time.Unix(0, 0)
	g := NewGovernor(100, 0, wall0)

	at := wall0.Add(10 * time.Second)
	simNow := 5 * time.Minute // well behind the 1000s target
	if g.Lag(simNow, at) == 0 {
		t.Fatal("expected lag before repace")
	}
	g.Repace(10, simNow, at)
	if g.Pace() != 10 {
		t.Fatalf("pace = %v, want 10", g.Pace())
	}
	if lag := g.Lag(simNow, at); lag != 0 {
		t.Fatalf("lag after repace = %v, want 0 (re-anchor forgives)", lag)
	}
	// The new schedule proceeds from the re-anchor point at the new pace.
	if got := g.Target(at.Add(time.Second)); got != simNow+10*time.Second {
		t.Fatalf("target after repace = %v, want %v", got, simNow+10*time.Second)
	}
}

func TestGovernorForgive(t *testing.T) {
	wall0 := time.Unix(0, 0)
	g := NewGovernor(50, 0, wall0)
	at := wall0.Add(time.Minute)
	simNow := 10 * time.Second
	g.Forgive(simNow, at)
	if g.Pace() != 50 {
		t.Fatalf("forgive changed pace: %v", g.Pace())
	}
	if lag := g.Lag(simNow, at); lag != 0 {
		t.Fatalf("lag after forgive = %v, want 0", lag)
	}
}

// TestGovernorDrivesEngine is the integration shape the serve loop uses:
// repeatedly advance the engine to the governor's target and observe that
// paced ticks land exactly where the compression ratio says they should.
func TestGovernorDrivesEngine(t *testing.T) {
	eng := NewEngine(Grid3Epoch)
	var fired []time.Duration
	NewTicker(eng, time.Hour, func() { fired = append(fired, eng.Now()) })

	wall0 := time.Unix(0, 0)
	g := NewGovernor(3600, 0, wall0) // 1 sim hour / wall second
	// Simulate five 1-second wall ticks without sleeping.
	for i := 1; i <= 5; i++ {
		eng.RunUntil(g.Target(wall0.Add(time.Duration(i) * time.Second)))
	}
	if len(fired) != 5 {
		t.Fatalf("ticker fired %d times, want 5 (at %v)", len(fired), fired)
	}
	for i, at := range fired {
		if want := time.Duration(i+1) * time.Hour; at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}
