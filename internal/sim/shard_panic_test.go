package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// A panic inside a shard worker's callback must not kill the worker
// goroutine (which would crash the process with no useful stack for the
// caller); runWindow records it and the barrier re-raises it on the
// goroutine that called Run, with the panic value intact.
func TestShardGroupWorkerPanicReRaisedAtBarrier(t *testing.T) {
	type marker struct{ why string }
	g := NewShardGroup(3, testWindow, Grid3Epoch)
	defer g.Close()
	// Shard 0 stays healthy so the barrier provably waits for every worker
	// before deciding anything.
	ran := false
	g.Shard(0).At(time.Millisecond, func() { ran = true })
	g.Shard(1).At(2*time.Millisecond, func() { panic(marker{"callback bug"}) })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed at the barrier")
		}
		m, ok := r.(marker)
		if !ok || m.why != "callback bug" {
			t.Fatalf("panic value not preserved across the barrier: %#v", r)
		}
		if !ran {
			t.Fatal("barrier re-raised before draining the healthy shard's window")
		}
	}()
	g.Run(time.Second)
}

// When several shards fault in the same window the barrier re-raises the
// lowest shard ID's fault — a deterministic pick, like everything else about
// the merge order.
func TestShardGroupFirstFaultWins(t *testing.T) {
	g := NewShardGroup(2, testWindow, Grid3Epoch)
	defer g.Close()
	g.Shard(0).At(time.Millisecond, func() { panic("fault-0") })
	g.Shard(1).At(time.Millisecond, func() { panic("fault-1") })
	defer func() {
		if r := recover(); r != "fault-0" {
			t.Fatalf("barrier raised %v, want shard 0's fault", r)
		}
	}()
	g.Run(time.Second)
}

// Post's precondition panics: a nil event function and an out-of-range
// destination are programming errors that must refuse before touching any
// outbox.
func TestShardGroupPostValidation(t *testing.T) {
	g := NewShardGroup(2, testWindow, Grid3Epoch)
	defer g.Close()
	mustPanic := func(name, want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s did not panic", name)
			}
			if !strings.Contains(fmt.Sprint(r), want) {
				t.Fatalf("%s panicked with %v, want substring %q", name, r, want)
			}
		}()
		fn()
	}
	mustPanic("nil fn", "nil cross-shard event", func() {
		g.Post(0, 1, time.Hour, nil)
	})
	mustPanic("bad destination", "cross-shard destination", func() {
		g.Post(0, 7, time.Hour, func() {})
	})
	mustPanic("zero shards", "shard count", func() {
		NewShardGroup(0, testWindow, Grid3Epoch)
	})
	mustPanic("zero window", "non-positive shard window", func() {
		NewShardGroup(2, 0, Grid3Epoch)
	})
}

// Run after Close is a use-after-free-shaped bug; it must panic rather than
// deadlock on the closed run channels.
func TestShardGroupRunAfterClosePanics(t *testing.T) {
	g := NewShardGroup(2, testWindow, Grid3Epoch)
	g.Close()
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "closed ShardGroup") {
			t.Fatalf("Run on closed group: %v", r)
		}
	}()
	g.Run(time.Second)
}
