// Package sim provides a deterministic discrete-event simulation engine.
//
// All Grid3 services run against a virtual clock owned by an Engine. Events
// scheduled for the same instant fire in the order they were scheduled, so a
// simulation is reproducible bit-for-bit given the same inputs and RNG seed.
//
// Times are expressed as time.Duration offsets from the engine's epoch, which
// anchors the simulation to a wall-clock date (Grid3 scenarios start on
// 2003-10-23, the first day of the Table 1 sample window).
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock exposes the current virtual time. Services that only need to read
// time (MDS soft-state expiry, monitoring timestamps) depend on Clock rather
// than the full Engine.
type Clock interface {
	// Now returns the current virtual time as an offset from the epoch.
	Now() time.Duration
	// WallClock returns the current virtual time as an absolute instant.
	WallClock() time.Time
}

// Scheduler is the write side of the engine: the ability to schedule events.
// Most services hold a Scheduler; tests may substitute their own.
type Scheduler interface {
	Clock
	// Schedule runs fn after delay. A negative delay is an error at Run time;
	// a zero delay runs fn after all currently pending events at Now.
	Schedule(delay time.Duration, fn func()) *Event
	// At runs fn at absolute offset t, which must not be in the past.
	At(t time.Duration, fn func()) *Event
}

// Event is a handle to a scheduled callback. It may be cancelled before it
// fires; cancelling a fired or already-cancelled event is a no-op.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int // heap index, -1 once removed
	cancelled bool
}

// Time returns the virtual time at which the event is scheduled to fire.
func (e *Event) Time() time.Duration { return e.at }

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// Engine is a single-threaded discrete-event executor. It is not safe for
// concurrent use: all Grid3 components run on one goroutine, which is what
// makes simulations deterministic.
type Engine struct {
	epoch     time.Time
	now       time.Duration
	seq       uint64
	queue     eventQueue
	processed uint64
	running   bool
}

// NewEngine returns an engine whose virtual time starts at zero, anchored to
// the given epoch.
func NewEngine(epoch time.Time) *Engine {
	return &Engine{epoch: epoch}
}

// Grid3Epoch is the start of the paper's Table 1 sample window,
// October 23 2003 00:00 UTC.
var Grid3Epoch = time.Date(2003, time.October, 23, 0, 0, 0, 0, time.UTC)

// Now implements Clock.
func (e *Engine) Now() time.Duration { return e.now }

// WallClock implements Clock.
func (e *Engine) WallClock() time.Time { return e.epoch.Add(e.now) }

// Epoch returns the wall-clock instant corresponding to virtual time zero.
func (e *Engine) Epoch() time.Time { return e.epoch }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events scheduled but not yet fired
// (including cancelled events not yet discarded).
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule implements Scheduler.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.push(e.now+delay, fn)
}

// At implements Scheduler.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < now %v", t, e.now))
	}
	return e.push(t, fn)
}

func (e *Engine) push(t time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes the event from the queue if it has not fired. It is safe to
// call multiple times and on events that have already fired.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	// The event is lazily discarded when popped; eager removal would be
	// O(log n) too, but lazy keeps Cancel allocation-free and simple.
}

// Step fires the next pending event, if any, advancing the clock to its
// scheduled time. It reports whether an event was fired.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	e.guard()
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunUntil fires events with timestamps ≤ t, then advances the clock to t.
// Events scheduled at exactly t do fire.
func (e *Engine) RunUntil(t time.Duration) {
	e.guard()
	defer func() { e.running = false }()
	for e.queue.Len() > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

func (e *Engine) guard() {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
}

func (e *Engine) peek() *Event {
	for e.queue.Len() > 0 {
		ev := e.queue[0]
		if !ev.cancelled {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
