// Package sim provides a deterministic discrete-event simulation engine.
//
// All Grid3 services run against a virtual clock owned by an Engine. Events
// scheduled for the same instant fire in the order they were scheduled, so a
// simulation is reproducible bit-for-bit given the same inputs and RNG seed.
//
// Times are expressed as time.Duration offsets from the engine's epoch, which
// anchors the simulation to a wall-clock date (Grid3 scenarios start on
// 2003-10-23, the first day of the Table 1 sample window).
//
// The engine is built for the hot path of a full 183-day campaign (~10^7
// events): a hand-rolled 4-ary min-heap over an event-slot arena with a free
// list, so steady-state scheduling performs no per-event allocation; a
// timer-wheel fast path for the fixed-interval ticks (monitoring collection,
// Condor-G negotiation, soft-state refresh) that dominate the queue, so a
// periodic re-arm never touches the main heap; and lazy cancellation with
// compaction once cancelled events exceed half the queue.
package sim

import (
	"fmt"
	"time"
)

// Clock exposes the current virtual time. Services that only need to read
// time (MDS soft-state expiry, monitoring timestamps) depend on Clock rather
// than the full Engine.
type Clock interface {
	// Now returns the current virtual time as an offset from the epoch.
	Now() time.Duration
	// WallClock returns the current virtual time as an absolute instant.
	WallClock() time.Time
}

// Scheduler is the write side of the engine: the ability to schedule events.
// Most services hold a Scheduler; tests may substitute their own.
type Scheduler interface {
	Clock
	// Schedule runs fn after delay. A negative delay is an error at Run time;
	// a zero delay runs fn after all currently pending events at Now.
	Schedule(delay time.Duration, fn func()) Event
	// At runs fn at absolute offset t, which must not be in the past.
	At(t time.Duration, fn func()) Event
}

// Event is a value handle to a scheduled callback. The zero Event is invalid
// (Valid reports false) and all its methods are no-ops. Handles are
// generation-checked against the engine's event arena: once an event has
// fired or been discarded its slot may be reused, and stale handles safely
// report not-pending rather than aliasing the new occupant.
type Event struct {
	eng *Engine
	at  time.Duration
	id  uint32
	gen uint32
}

// Time returns the virtual time at which the event was scheduled to fire.
func (ev Event) Time() time.Duration { return ev.at }

// Valid reports whether the handle refers to an event that was actually
// scheduled (as opposed to the zero Event).
func (ev Event) Valid() bool { return ev.eng != nil }

// Pending reports whether the event is still queued: not yet fired and not
// cancelled.
func (ev Event) Pending() bool {
	if ev.eng == nil {
		return false
	}
	s := &ev.eng.slots[ev.id]
	return s.gen == ev.gen && s.state == slotPending
}

// Cancelled reports whether Cancel was called on the event before it fired.
// Once the event's arena slot has been reused by a later event, a stale
// handle reports false.
func (ev Event) Cancelled() bool {
	if ev.eng == nil {
		return false
	}
	s := &ev.eng.slots[ev.id]
	if s.gen == ev.gen {
		return s.state == slotCancelled
	}
	if s.gen == ev.gen+1 {
		// The slot died exactly once since this handle was issued, so the
		// recorded cause of death is this event's.
		return s.prevCancelled
	}
	return false
}

// Cancel removes the event from the queue if it has not fired. Safe to call
// multiple times, on fired events, and on the zero Event.
func (ev Event) Cancel() {
	if ev.eng != nil {
		ev.eng.Cancel(ev)
	}
}

// Slot states in the event arena.
const (
	slotFree uint8 = iota
	slotPending
	slotCancelled
)

// slot is one arena entry. The scheduling key (at, seq) lives in the heap
// item, not here: the slot only carries what Cancel and firing need.
type slot struct {
	fn            func()
	gen           uint32
	state         uint8
	prevCancelled bool // how generation gen-1 ended (fired vs cancelled)
}

// qitem is one entry of the 4-ary min-heap, ordered by (at, seq).
type qitem struct {
	at  time.Duration
	seq uint64
	id  uint32
}

func qless(a, b qitem) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a single-threaded discrete-event executor. It is not safe for
// concurrent use: all Grid3 components run on one goroutine, which is what
// makes simulations deterministic. Run one Engine per goroutine to run
// campaigns in parallel (see internal/campaign).
type Engine struct {
	epoch time.Time
	now   time.Duration
	seq   uint64

	q         []qitem  // 4-ary min-heap over (at, seq)
	slots     []slot   // event arena; q items point into it
	freeSlots []uint32 // recycled arena indices
	cancelled int      // cancelled events still occupying q
	live      int      // scheduled one-shot events neither fired nor cancelled

	wheel timerWheel

	processed uint64
	discarded uint64
	running   bool
}

// NewEngine returns an engine whose virtual time starts at zero, anchored to
// the given epoch.
func NewEngine(epoch time.Time) *Engine {
	return &Engine{epoch: epoch}
}

// Grid3Epoch is the start of the paper's Table 1 sample window,
// October 23 2003 00:00 UTC.
var Grid3Epoch = time.Date(2003, time.October, 23, 0, 0, 0, 0, time.UTC)

// Now implements Clock.
func (e *Engine) Now() time.Duration { return e.now }

// WallClock implements Clock.
func (e *Engine) WallClock() time.Time { return e.epoch.Add(e.now) }

// Epoch returns the wall-clock instant corresponding to virtual time zero.
func (e *Engine) Epoch() time.Time { return e.epoch }

// Processed returns the number of events executed so far (one-shot events
// fired plus periodic timer ticks).
func (e *Engine) Processed() uint64 { return e.processed }

// Discarded returns the number of cancelled events physically removed from
// the queue so far — the housekeeping cost of lazy cancellation.
func (e *Engine) Discarded() uint64 { return e.discarded }

// Pending returns the number of live events scheduled but not yet fired:
// cancelled-but-undiscarded events are excluded, active periodic timers
// count one each. The live count is maintained incrementally in the arena
// bookkeeping (push/Cancel/fire) rather than derived from the queue, so
// Pending is O(1) and independent of how many cancelled entries are still
// awaiting lazy discard.
func (e *Engine) Pending() int {
	return e.live + e.wheel.active()
}

// Schedule implements Scheduler.
func (e *Engine) Schedule(delay time.Duration, fn func()) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.push(e.now+delay, fn)
}

// At implements Scheduler.
func (e *Engine) At(t time.Duration, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: %v < now %v", t, e.now))
	}
	return e.push(t, fn)
}

func (e *Engine) push(t time.Duration, fn func()) Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	var id uint32
	if n := len(e.freeSlots); n > 0 {
		id = e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
	} else {
		e.slots = append(e.slots, slot{})
		id = uint32(len(e.slots) - 1)
	}
	s := &e.slots[id]
	s.fn = fn
	s.state = slotPending
	e.live++
	e.q = append(e.q, qitem{at: t, seq: e.seq, id: id})
	e.siftUp(len(e.q) - 1)
	return Event{eng: e, at: t, id: id, gen: s.gen}
}

// freeSlot retires an arena entry, recording how it ended, and makes it
// available for reuse under the next generation.
func (e *Engine) freeSlot(id uint32, wasCancelled bool) {
	s := &e.slots[id]
	s.fn = nil
	s.state = slotFree
	s.prevCancelled = wasCancelled
	s.gen++
	e.freeSlots = append(e.freeSlots, id)
}

// Cancel removes the event from the queue if it has not fired. It is safe to
// call multiple times and on events that have already fired. Cancellation is
// lazy — the heap entry is discarded when it surfaces — but once cancelled
// events outnumber live ones the queue is compacted in one pass.
func (e *Engine) Cancel(ev Event) {
	if ev.eng != e || ev.eng == nil {
		return
	}
	s := &e.slots[ev.id]
	if s.gen != ev.gen || s.state != slotPending {
		return
	}
	s.state = slotCancelled
	s.fn = nil // release the closure immediately
	e.cancelled++
	e.live--
	if e.cancelled > len(e.q)/2 && len(e.q) >= 64 {
		e.compact()
	}
}

// compact rebuilds the heap without the cancelled entries.
func (e *Engine) compact() {
	kept := e.q[:0]
	for _, it := range e.q {
		if e.slots[it.id].state == slotCancelled {
			e.freeSlot(it.id, true)
			e.discarded++
			continue
		}
		kept = append(kept, it)
	}
	e.q = kept
	e.cancelled = 0
	// Build-heap: sift down from the last parent. For a 4-ary heap the
	// parent of the final leaf n-1 is (n-2)/4.
	for i := (len(e.q) - 2) / 4; i >= 0; i-- {
		e.siftDown(i)
	}
}

// peekEvent returns the earliest live one-shot event, discarding cancelled
// entries that surface at the root.
func (e *Engine) peekEvent() (qitem, bool) {
	for len(e.q) > 0 {
		it := e.q[0]
		if e.slots[it.id].state != slotCancelled {
			return it, true
		}
		e.popRoot()
		e.freeSlot(it.id, true)
		e.discarded++
		e.cancelled--
	}
	return qitem{}, false
}

// NextEventAt returns the timestamp of the earliest pending event or
// periodic timer, or false when the engine is idle. The sharded scheduler
// uses it to size conservative time windows; cancelled entries surfacing at
// the heap root are discarded as a side effect, exactly as Step would.
func (e *Engine) NextEventAt() (time.Duration, bool) {
	it, eok := e.peekEvent()
	tm, tok := e.wheel.peek()
	switch {
	case eok && (!tok || qless(it, qitem{at: tm.at, seq: tm.seq})):
		return it.at, true
	case tok:
		return tm.at, true
	}
	return 0, false
}

// Step fires the next pending event, if any, advancing the clock to its
// scheduled time. It reports whether an event was fired.
func (e *Engine) Step() bool {
	it, eok := e.peekEvent()
	tm, tok := e.wheel.peek()
	if eok && (!tok || qless(it, qitem{at: tm.at, seq: tm.seq})) {
		e.popRoot()
		s := &e.slots[it.id]
		fn := s.fn
		e.freeSlot(it.id, false)
		e.live--
		e.now = it.at
		e.processed++
		fn()
		return true
	}
	if tok {
		e.now = tm.at
		e.processed++
		e.wheel.fire(e)
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	e.guard()
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunUntil fires events with timestamps ≤ t, then advances the clock to t.
// Events scheduled at exactly t do fire.
func (e *Engine) RunUntil(t time.Duration) {
	e.guard()
	defer func() { e.running = false }()
	for {
		it, eok := e.peekEvent()
		tm, tok := e.wheel.peek()
		if !eok && !tok {
			break
		}
		next := tm.at
		if eok && (!tok || qless(it, qitem{at: tm.at, seq: tm.seq})) {
			next = it.at
		}
		if next > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now + d) }

func (e *Engine) guard() {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
}

// 4-ary heap primitives. A wider node halves the tree depth versus the
// binary container/heap layout, trading a few extra comparisons per level
// for far fewer cache-missing levels — the standard win for sift-down-heavy
// workloads like an event queue that pops as often as it pushes.

func (e *Engine) siftUp(i int) {
	it := e.q[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !qless(it, e.q[parent]) {
			break
		}
		e.q[i] = e.q[parent]
		i = parent
	}
	e.q[i] = it
}

func (e *Engine) siftDown(i int) {
	n := len(e.q)
	it := e.q[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if qless(e.q[c], e.q[min]) {
				min = c
			}
		}
		if !qless(e.q[min], it) {
			break
		}
		e.q[i] = e.q[min]
		i = min
	}
	e.q[i] = it
}

// popRoot removes the heap minimum. Callers read q[0] first.
func (e *Engine) popRoot() {
	n := len(e.q) - 1
	e.q[0] = e.q[n]
	e.q = e.q[:n]
	if n > 0 {
		e.siftDown(0)
	}
}
