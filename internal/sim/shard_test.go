package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

const testWindow = 10 * time.Millisecond

// TestShardGroupMergeOrder: simultaneous cross events from different shards
// fire in ascending source-shard order — the merge order is a pure function
// of shard ID, not of which goroutine reached the barrier first.
func TestShardGroupMergeOrder(t *testing.T) {
	g := NewShardGroup(4, testWindow, Grid3Epoch)
	defer g.Close()
	var log []string
	at := 50 * time.Millisecond
	// Posted in deliberately descending shard order; two sends from shard 2
	// to check per-source send order is kept.
	for _, from := range []int{3, 2, 1} {
		from := from
		g.Post(from, 0, at, func() { log = append(log, fmt.Sprintf("from%d", from)) })
	}
	g.Post(2, 0, at, func() { log = append(log, "from2-second") })
	g.Run(100 * time.Millisecond)
	want := []string{"from1", "from2", "from2-second", "from3"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("merge order %v, want %v", log, want)
	}
}

// pingPongSharded runs a token-passing workload: each shard starts one
// token that hops to the next shard every hop latency (= the conservative
// window), carrying a counter. Log entries go through per-shard slices —
// different shards run concurrently within a window, so shared state in
// callbacks must partition by shard, exactly as in the production grid.
func pingPongSharded(shards int, horizon time.Duration) ([]int, []string) {
	g := NewShardGroup(shards, testWindow, Grid3Epoch)
	defer g.Close()
	hops := make([]int, shards)
	logs := make([][]string, shards)
	var send func(owner, token, value int)
	send = func(owner, token, value int) {
		next := (owner + 1) % shards
		at := g.Shard(owner).Now() + testWindow
		g.Post(owner, next, at, func() {
			hops[token]++ // token i lives on one shard at a time: no race
			logs[next] = append(logs[next], fmt.Sprintf("t=%v token%d v=%d",
				g.Shard(next).Now(), token, value+1))
			send(next, token, value+1)
		})
	}
	for s := 0; s < shards; s++ {
		send(s, s, 0)
	}
	g.Run(horizon)
	var combined []string
	for s, l := range logs {
		combined = append(combined, fmt.Sprintf("shard%d:%s", s, strings.Join(l, "|")))
	}
	return hops, combined
}

// TestShardGroupSerialEquivalence: the sharded token-passing run reaches the
// same final state as the identical workload on a single serial engine.
func TestShardGroupSerialEquivalence(t *testing.T) {
	const shards = 3
	horizon := time.Second
	gotHops, _ := pingPongSharded(shards, horizon)

	// Serial reference: one engine, Post replaced by a plain At.
	eng := NewEngine(Grid3Epoch)
	wantHops := make([]int, shards)
	var send func(owner, token, value int)
	send = func(owner, token, value int) {
		next := (owner + 1) % shards
		eng.At(eng.Now()+testWindow, func() {
			wantHops[token]++
			send(next, token, value+1)
		})
	}
	for s := 0; s < shards; s++ {
		send(s, s, 0)
	}
	eng.RunUntil(horizon)

	if !reflect.DeepEqual(gotHops, wantHops) {
		t.Fatalf("sharded hops %v, serial hops %v", gotHops, wantHops)
	}
	if gotHops[0] == 0 {
		t.Fatal("workload never ran")
	}
}

// TestShardGroupDeterminism: a seeded pseudo-random workload with heavy
// cross-shard traffic produces the identical event log on repeated runs.
func TestShardGroupDeterminism(t *testing.T) {
	run := func() []string {
		const shards = 4
		g := NewShardGroup(shards, testWindow, Grid3Epoch)
		defer g.Close()
		logs := make([][]string, shards)
		rngs := make([]uint64, shards)
		for s := range rngs {
			rngs[s] = uint64(s)*0x9e3779b97f4a7c15 + 1
		}
		next := func(s int) uint64 { // splitmix64, one stream per shard
			rngs[s] += 0x9e3779b97f4a7c15
			z := rngs[s]
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
		var hop func(s, depth int)
		hop = func(s, depth int) {
			logs[s] = append(logs[s], fmt.Sprintf("s%d d%d t=%v", s, depth, g.Shard(s).Now()))
			if depth > 20 {
				return
			}
			r := next(s)
			dest := int(r % shards)
			jitter := time.Duration(r%7) * time.Millisecond
			at := g.Shard(s).Now() + testWindow + jitter
			if dest == s {
				g.Shard(s).At(at, func() { hop(s, depth+1) })
			} else {
				g.Post(s, dest, at, func() { hop(dest, depth+1) })
			}
			// Fan out occasionally so traffic grows.
			if r%4 == 0 {
				d2 := int((r >> 8) % shards)
				g.Post(s, d2, at+time.Millisecond, func() { hop(d2, depth+2) })
			}
		}
		for s := 0; s < shards; s++ {
			s := s
			g.Shard(s).At(time.Duration(s+1)*time.Millisecond, func() { hop(s, 0) })
		}
		g.Run(2 * time.Second)
		var combined []string
		for s, l := range logs {
			combined = append(combined, fmt.Sprintf("shard%d<%s>", s, strings.Join(l, ";")))
		}
		if g.Stats().CrossEvents == 0 {
			t.Fatal("workload exchanged no cross-shard events")
		}
		return combined
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed sharded runs diverged")
	}
}

// TestShardGroupActivitySizedWindows: sparse workloads skip idle time in one
// barrier per event cluster instead of stepping fixed windows.
func TestShardGroupActivitySizedWindows(t *testing.T) {
	g := NewShardGroup(2, testWindow, Grid3Epoch)
	defer g.Close()
	fired := 0
	for i := 0; i < 5; i++ {
		at := time.Duration(i+1) * time.Hour // hours apart, 10ms windows
		g.Shard(i%2).At(at, func() { fired++ })
	}
	g.Run(6 * time.Hour)
	if fired != 5 {
		t.Fatalf("fired %d events, want 5", fired)
	}
	if w := g.Stats().Windows; w > 10 {
		t.Fatalf("%d windows for 5 isolated events — idle time is being stepped, not skipped", w)
	}
	if now := g.Shard(0).Now(); now != 6*time.Hour {
		t.Fatalf("shard clock %v, want 6h", now)
	}
}

// TestShardGroupLookaheadViolation: posting inside the current window is the
// one way a sharded run could diverge from the serial one, so it must panic
// — and the panic must surface on the caller's goroutine.
func TestShardGroupLookaheadViolation(t *testing.T) {
	g := NewShardGroup(2, testWindow, Grid3Epoch)
	defer g.Close()
	g.Shard(0).At(5*time.Millisecond, func() {
		// now+1ns is far inside the current window: illegal.
		g.Post(0, 1, g.Shard(0).Now()+time.Nanosecond, func() {})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lookahead violation did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead violation") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	g.Run(time.Second)
}

func TestShardGroupStatsSpeedup(t *testing.T) {
	var s ShardStats
	if sp := s.Speedup(); sp != 1 {
		t.Fatalf("zero stats speedup %v, want 1", sp)
	}
	s = ShardStats{BusyNs: 4000, CriticalNs: 1000}
	if sp := s.Speedup(); sp != 4 {
		t.Fatalf("speedup %v, want 4", sp)
	}
}
