package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func snapAt(t time.Duration, digest uint64) *Snapshot {
	return &Snapshot{Scope: ScopeBatch, SimTime: t, Digest: digest, Config: []byte(`{}`)}
}

// Exercise both generic backends through the interface so they stay
// behaviorally interchangeable.
func runStoreSuite(t *testing.T, st StateStore) {
	t.Helper()
	if _, err := st.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	if err := st.Delete("missing"); err != nil {
		t.Fatalf("Delete(missing) = %v, want nil", err)
	}
	if _, _, err := Latest(st); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Latest(empty) = %v, want ErrNotFound", err)
	}

	s1, s2, s3 := snapAt(time.Hour, 1), snapAt(2*time.Hour, 2), snapAt(3*time.Hour, 3)
	for _, s := range []*Snapshot{s2, s1, s3} { // out of order on purpose
		if _, err := Save(st, s); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	ids, err := st.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	want := []string{s1.ID(), s2.ID(), s3.ID()}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("List = %v, want %v (sorted chronological)", ids, want)
	}

	got, err := Load(st, s2.ID())
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.SimTime != s2.SimTime || got.Digest != s2.Digest {
		t.Fatalf("Load(s2) = %+v", got)
	}

	latest, id, err := Latest(st)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if id != s3.ID() || latest.SimTime != s3.SimTime {
		t.Fatalf("Latest = %s, want %s", id, s3.ID())
	}

	// Overwriting an existing ID replaces the record.
	if err := st.Put(s1.ID(), Encode(s1)); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}

	if err := Prune(st, 2); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	ids, _ = st.List()
	if !reflect.DeepEqual(ids, []string{s2.ID(), s3.ID()}) {
		t.Fatalf("after Prune(2): %v", ids)
	}
	if err := Prune(st, 0); err != nil { // clamps to keep=1
		t.Fatalf("Prune(0): %v", err)
	}
	ids, _ = st.List()
	if !reflect.DeepEqual(ids, []string{s3.ID()}) {
		t.Fatalf("after Prune(0): %v, want newest only", ids)
	}

	if err := st.Delete(s3.ID()); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if ids, _ := st.List(); len(ids) != 0 {
		t.Fatalf("store not empty after delete: %v", ids)
	}
}

func TestMemStore(t *testing.T) { runStoreSuite(t, NewMemStore()) }

func TestMemStoreZeroValue(t *testing.T) { runStoreSuite(t, &MemStore{}) }

func TestMemStoreCopiesData(t *testing.T) {
	st := NewMemStore()
	buf := []byte{1, 2, 3}
	if err := st.Put("a", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 9
	got, err := st.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("Put aliased caller buffer")
	}
	got[1] = 9
	again, _ := st.Get("a")
	if again[1] != 2 {
		t.Fatal("Get aliased stored buffer")
	}
}

func TestDirStore(t *testing.T) {
	st, err := NewDirStore(filepath.Join(t.TempDir(), "snaps"))
	if err != nil {
		t.Fatal(err)
	}
	runStoreSuite(t, st)
}

func TestDirStoreRejectsPathEscapes(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../evil", "a/b", `a\b`, ".hidden"} {
		if err := st.Put(id, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted", id)
		}
		if _, err := st.Get(id); err == nil {
			t.Fatalf("Get(%q) accepted", id)
		}
	}
}

// A foreign or torn file in the directory must not break listing, and
// Latest must skip undecodable records and fall back to the newest good one.
func TestDirStoreLatestSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := snapAt(time.Hour, 7)
	if _, err := Save(st, good); err != nil {
		t.Fatal(err)
	}
	bad := snapAt(2*time.Hour, 8)
	enc := Encode(bad)
	// Simulate a torn write on a non-atomic medium: truncated record
	// under a valid snapshot name.
	if err := os.WriteFile(filepath.Join(dir, bad.ID()+snapExt), enc[:len(enc)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// Foreign files are invisible to List.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("List = %v", ids)
	}
	snap, id, err := Latest(st)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if id != good.ID() || snap.Digest != good.Digest {
		t.Fatalf("Latest picked %s, want %s", id, good.ID())
	}
}

func TestDirStoreLatestAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snap-1-1"+snapExt), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Latest(st); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Latest = %v, want ErrNotFound", err)
	}
}

// The committed file must always be a complete record: Put goes through a
// temp file + rename, and no temp droppings survive a successful commit.
func TestDirStorePutAtomicNoDroppings(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := snapAt(time.Hour, 1)
	if _, err := Save(st, snap); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != snap.ID()+snapExt {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory after Put: %v", names)
	}
	if _, err := Load(st, snap.ID()); err != nil {
		t.Fatalf("committed record unreadable: %v", err)
	}
}

func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.g3snap")
	st := NewFileStore(path)
	if st.Path() != path {
		t.Fatal("Path")
	}
	if _, err := st.Get("any"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on absent file = %v", err)
	}
	if ids, err := st.List(); err != nil || len(ids) != 0 {
		t.Fatalf("List on absent file = %v, %v", ids, err)
	}
	snap := snapAt(5*time.Hour, 11)
	if _, err := Save(st, snap); err != nil {
		t.Fatal(err)
	}
	ids, err := st.List()
	if err != nil || len(ids) != 1 || ids[0] != snap.ID() {
		t.Fatalf("List = %v, %v", ids, err)
	}
	got, _, err := Latest(st)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if got.SimTime != snap.SimTime {
		t.Fatalf("Latest = %+v", got)
	}
	// Second Put replaces the single slot.
	next := snapAt(6*time.Hour, 12)
	if _, err := Save(st, next); err != nil {
		t.Fatal(err)
	}
	got, _, err = Latest(st)
	if err != nil || got.SimTime != next.SimTime {
		t.Fatalf("after replace: %+v, %v", got, err)
	}
	if err := st.Delete(""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("file survives Delete")
	}

	// A corrupt sole snapshot must surface as corruption — there is no
	// newer record to fall back to, and "not found" would hide the damage.
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.List(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("List over a corrupt file = %v, want ErrCorrupt", err)
	}
	if _, _, err := Latest(st); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Latest over a corrupt file = %v, want ErrCorrupt", err)
	}
}
