// Package checkpoint provides crash-recoverable snapshots for Grid3 runs:
// a versioned, checksummed wire format for snapshot records and a pluggable
// StateStore interface with in-memory and durable directory backends.
//
// # What a snapshot is
//
// Grid3's discrete-event engine queues Go closures, which cannot be
// serialized, so a snapshot does not carry the event queue byte-for-byte.
// Instead it records everything needed to rebuild the run's state by
// deterministic replay — the resolved scenario configuration (which pins the
// seed and therefore every RNG draw), the sim time reached, and a journal of
// externally-injected operations (serve-mode enrollments and submissions)
// with the sim times at which they executed — plus a digest over a canonical
// walk of the live state (engine clock, sequence counter, pending-event
// arena/heap/timer-wheel keys, and the service soft state: RLS catalogs, SRM
// reservations and pins, iGOC tickets, breaker states, VO rosters, job
// tables). Restoring replays the run to the recorded sim time, re-injecting
// journal operations at their recorded instants, and then verifies the walk
// against the digest: a restore either reproduces the checkpointed state
// exactly or fails, never something in between. Because replay is the same
// code path as the original run, a checkpoint-then-restore run is
// byte-identical to a straight-through run of the same seed.
//
// # Wire format
//
// A snapshot record is framed as
//
//	magic   "G3SNAP"            6 bytes
//	version uint16              format version (currently 1)
//	scope   uint8               batch or serve
//	simtime int64               nanoseconds reached
//	seed    int64               scenario seed (informational; the config wins)
//	events  uint64              engine events processed at capture
//	digest  uint64              state-walk verification digest
//	config  uint32 len + bytes  resolved scenario configuration (JSON)
//	journal uint32 count, then per op:
//	        int64 simtime, uint16 kind len + kind, uint32 data len + data
//	crc     uint32              IEEE CRC-32 of every preceding byte
//
// all integers little-endian. Decode rejects bad magic, unknown versions,
// truncated or oversized sections, and checksum mismatches with an error and
// touches nothing else — corruption can never be half-loaded.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

// Version is the current snapshot format version. Decode accepts exactly
// this version: the format carries full state for replay, so cross-version
// migration is a re-run, not a best-effort parse.
const Version = 1

// Scope records which layer captured the snapshot; it decides who may
// restore it (the batch path cannot replay a service journal).
type Scope uint8

const (
	// ScopeBatch marks a snapshot of a batch run (grid3sim, RunScenario):
	// no external operations, empty journal.
	ScopeBatch Scope = iota
	// ScopeServe marks a snapshot captured by the serve layer: the digest
	// additionally covers the service job table, and the journal carries
	// the externally-injected operations to re-apply during replay.
	ScopeServe
)

func (s Scope) String() string {
	switch s {
	case ScopeBatch:
		return "batch"
	case ScopeServe:
		return "serve"
	}
	return fmt.Sprintf("scope(%d)", uint8(s))
}

// Op is one journaled external operation: an ingress mutation that replay
// must re-inject because it cannot be derived from the seed. T is the
// engine's sim time when the operation originally executed; Kind and Data
// are owned by the layer that wrote the journal (the serve layer journals
// "enroll" and "submit" with their wire-request JSON).
type Op struct {
	T    time.Duration
	Kind string
	Data []byte
}

// Snapshot is one decoded checkpoint record.
type Snapshot struct {
	Scope   Scope
	SimTime time.Duration
	Seed    int64
	Events  uint64
	Digest  uint64
	Config  []byte
	Journal []Op
}

// ID returns the snapshot's store identifier: sim-time-ordered (fixed-width
// nanoseconds) then digest, so a lexicographic sort of IDs is a
// chronological sort of snapshots and Latest is the last entry.
func (s *Snapshot) ID() string {
	return fmt.Sprintf("snap-%020d-%016x", s.SimTime, s.Digest)
}

// Decode errors. ErrCorrupt is the umbrella for every structural failure:
// the specific sentinels below wrap it, so errors.Is(err, ErrCorrupt)
// answers "is this snapshot unusable" without enumerating the ways.
var (
	ErrCorrupt     = errors.New("checkpoint: corrupt snapshot")
	ErrBadMagic    = fmt.Errorf("%w: not a snapshot (bad magic)", ErrCorrupt)
	ErrBadVersion  = fmt.Errorf("%w: unsupported snapshot version", ErrCorrupt)
	ErrTruncated   = fmt.Errorf("%w: truncated", ErrCorrupt)
	ErrChecksum    = fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	ErrDigest      = errors.New("checkpoint: state digest mismatch after replay")
	ErrWrongScope  = errors.New("checkpoint: snapshot scope not restorable here")
	ErrUnfinalized = errors.New("checkpoint: cannot snapshot a finished run")
)

var magic = [6]byte{'G', '3', 'S', 'N', 'A', 'P'}

// Section size ceilings: far above anything a real run produces, low enough
// that a fuzzed length field cannot demand a pathological allocation before
// the checksum would have caught it.
const (
	maxConfigLen  = 64 << 20
	maxKindLen    = 256
	maxOpDataLen  = 16 << 20
	maxJournalOps = 1 << 24
)

// Encode renders the snapshot in the wire format described in the package
// comment.
func Encode(s *Snapshot) []byte {
	n := len(magic) + 2 + 1 + 8 + 8 + 8 + 8 + 4 + len(s.Config) + 4
	for _, op := range s.Journal {
		n += 8 + 2 + len(op.Kind) + 4 + len(op.Data)
	}
	n += 4 // trailing CRC
	buf := make([]byte, 0, n)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = append(buf, byte(s.Scope))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.SimTime))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Seed))
	buf = binary.LittleEndian.AppendUint64(buf, s.Events)
	buf = binary.LittleEndian.AppendUint64(buf, s.Digest)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Config)))
	buf = append(buf, s.Config...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Journal)))
	for _, op := range s.Journal {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(op.T))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(op.Kind)))
		buf = append(buf, op.Kind...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(op.Data)))
		buf = append(buf, op.Data...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// reader is a bounds-checked cursor over the encoded record. Every take
// validates against the remaining bytes, so a hostile length field produces
// ErrTruncated/ErrCorrupt instead of a panic or an oversized allocation.
type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, ErrTruncated
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// Decode parses an encoded snapshot. It validates framing, bounds, and the
// trailing checksum before building the result; on any error the returned
// snapshot is nil and no partial data escapes.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic) {
		return nil, ErrBadMagic
	}
	for i, b := range magic {
		if data[i] != b {
			return nil, ErrBadMagic
		}
	}
	if len(data) < len(magic)+2+1+4 {
		return nil, ErrTruncated
	}
	// Checksum first: everything after it is only trusted once the record
	// is known to be intact.
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, ErrChecksum
	}
	r := &reader{buf: body, off: len(magic)}
	version, err := r.u16()
	if err != nil {
		return nil, err
	}
	if version != Version {
		return nil, fmt.Errorf("%w: got %d, this build reads %d", ErrBadVersion, version, Version)
	}
	scopeB, err := r.take(1)
	if err != nil {
		return nil, err
	}
	scope := Scope(scopeB[0])
	if scope != ScopeBatch && scope != ScopeServe {
		return nil, fmt.Errorf("%w: unknown scope %d", ErrCorrupt, scopeB[0])
	}
	simTime, err := r.u64()
	if err != nil {
		return nil, err
	}
	if int64(simTime) < 0 {
		return nil, fmt.Errorf("%w: negative sim time", ErrCorrupt)
	}
	seed, err := r.u64()
	if err != nil {
		return nil, err
	}
	events, err := r.u64()
	if err != nil {
		return nil, err
	}
	digest, err := r.u64()
	if err != nil {
		return nil, err
	}
	cfgLen, err := r.u32()
	if err != nil {
		return nil, err
	}
	if cfgLen > maxConfigLen {
		return nil, fmt.Errorf("%w: config section %d bytes", ErrCorrupt, cfgLen)
	}
	cfgRaw, err := r.take(int(cfgLen))
	if err != nil {
		return nil, err
	}
	opCount, err := r.u32()
	if err != nil {
		return nil, err
	}
	if opCount > maxJournalOps {
		return nil, fmt.Errorf("%w: journal of %d ops", ErrCorrupt, opCount)
	}
	var journal []Op
	prevT := time.Duration(0)
	for i := uint32(0); i < opCount; i++ {
		t, err := r.u64()
		if err != nil {
			return nil, err
		}
		op := Op{T: time.Duration(t)}
		if op.T < prevT || op.T < 0 {
			return nil, fmt.Errorf("%w: journal op %d out of time order", ErrCorrupt, i)
		}
		prevT = op.T
		kindLen, err := r.u16()
		if err != nil {
			return nil, err
		}
		if kindLen > maxKindLen {
			return nil, fmt.Errorf("%w: op kind %d bytes", ErrCorrupt, kindLen)
		}
		kind, err := r.take(int(kindLen))
		if err != nil {
			return nil, err
		}
		op.Kind = string(kind)
		dataLen, err := r.u32()
		if err != nil {
			return nil, err
		}
		if dataLen > maxOpDataLen {
			return nil, fmt.Errorf("%w: op data %d bytes", ErrCorrupt, dataLen)
		}
		opData, err := r.take(int(dataLen))
		if err != nil {
			return nil, err
		}
		op.Data = append([]byte(nil), opData...)
		journal = append(journal, op)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.remaining())
	}
	return &Snapshot{
		Scope:   scope,
		SimTime: time.Duration(simTime),
		Seed:    int64(seed),
		Events:  events,
		Digest:  digest,
		Config:  append([]byte(nil), cfgRaw...),
		Journal: journal,
	}, nil
}
