package checkpoint

import (
	"testing"
	"time"
)

// FuzzDecode drives the snapshot decoder with arbitrary bytes. The decoder
// must never panic and never allocate unboundedly; whatever it accepts must
// re-encode to the identical record (so nothing partial or aliased escapes).
func FuzzDecode(f *testing.F) {
	// Seed with a valid record and structured mutants of it so the fuzzer
	// starts inside the format, not at random noise.
	valid := Encode(&Snapshot{
		Scope:   ScopeServe,
		SimTime: 30 * time.Hour,
		Seed:    42,
		Events:  999,
		Digest:  0x0123456789abcdef,
		Config:  []byte(`{"seed":42}`),
		Journal: []Op{{T: time.Hour, Kind: "submit", Data: []byte(`{"vo":"atlas"}`)}},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])             // truncated
	f.Add(append([]byte(nil), "G3SNAP"...)) // bare magic
	skew := append([]byte(nil), valid...)
	skew[6], skew[7] = 0xff, 0xff // version skew
	f.Add(skew)
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x40 // bit flip mid-record
	f.Add(flip)
	f.Add([]byte{})
	f.Add([]byte("not a snapshot at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			if snap != nil {
				t.Fatal("error with non-nil snapshot")
			}
			return
		}
		// Accepted records must survive a lossless round-trip.
		re, err := Decode(Encode(snap))
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v", err)
		}
		if re.Scope != snap.Scope || re.SimTime != snap.SimTime || re.Seed != snap.Seed ||
			re.Events != snap.Events || re.Digest != snap.Digest ||
			string(re.Config) != string(snap.Config) || len(re.Journal) != len(snap.Journal) {
			t.Fatal("round-trip mismatch on accepted record")
		}
		// The decoded record must not alias the fuzz input.
		for i := range data {
			data[i] = 0xaa
		}
		if Encode(snap) == nil {
			t.Fatal("unreachable")
		}
		if re2, err := Decode(Encode(snap)); err != nil || re2.Digest != re.Digest {
			t.Fatalf("snapshot aliased fuzz input: %v", err)
		}
	})
}

// The deterministic regression cases from the fuzz corpus: these inputs
// crashed or could crash naive decoders (length fields larger than the
// buffer, counts that imply huge allocations). They must error cleanly.
func TestDecodeRegressionInputs(t *testing.T) {
	valid := Encode(&Snapshot{Scope: ScopeBatch, Config: []byte(`{}`)})
	cases := map[string][]byte{
		"empty":         {},
		"magic only":    []byte("G3SNAP"),
		"half header":   valid[:10],
		"all 0xff tail": append(append([]byte(nil), "G3SNAP"...), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff),
		"giant cfg claim": func() []byte {
			b := append([]byte(nil), valid...)
			b[6+2+1+32] = 0xff // inflate config length low byte
			return b
		}(),
	}
	for name, in := range cases {
		if snap, err := Decode(in); err == nil {
			t.Fatalf("%s: decoded %+v, want error", name, snap)
		}
	}
}
