package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned by StateStore.Get for an unknown snapshot ID and
// by Latest when the store is empty.
var ErrNotFound = errors.New("checkpoint: snapshot not found")

// StateStore is the pluggable persistence boundary for encoded snapshots.
// Implementations store opaque byte records keyed by snapshot ID; framing,
// checksums, and interpretation belong to Encode/Decode. All methods must be
// safe for concurrent use.
//
// The two in-tree backends mirror the memory-vs-durable split the roadmap
// calls for: MemStore for tests and warm-start forking, DirStore for
// crash-recoverable daemons.
type StateStore interface {
	// Put durably stores data under id, replacing any existing record.
	// A Put that returns nil must be all-or-nothing: a crash mid-Put may
	// lose the new record but never corrupts an old one.
	Put(id string, data []byte) error
	// Get returns the record stored under id, or ErrNotFound.
	Get(id string) ([]byte, error)
	// List returns all stored IDs in ascending lexicographic order —
	// which, for Snapshot.ID keys, is chronological sim-time order.
	List() ([]string, error)
	// Delete removes the record under id. Deleting an absent ID is a
	// no-op, not an error.
	Delete(id string) error
}

// Save encodes snap and stores it under its canonical ID.
func Save(st StateStore, snap *Snapshot) (string, error) {
	id := snap.ID()
	if err := st.Put(id, Encode(snap)); err != nil {
		return "", err
	}
	return id, nil
}

// Load fetches and decodes the snapshot stored under id.
func Load(st StateStore, id string) (*Snapshot, error) {
	data, err := st.Get(id)
	if err != nil {
		return nil, err
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	return snap, nil
}

// Latest decodes the newest loadable snapshot in the store, scanning from
// the most recent ID backwards and skipping records that fail to decode
// (e.g. a snapshot truncated by a crash mid-write on a non-atomic medium).
// It returns the snapshot, its ID, and — when every record was rejected —
// the newest record's decode error wrapped alongside ErrNotFound.
func Latest(st StateStore) (*Snapshot, string, error) {
	ids, err := st.List()
	if err != nil {
		return nil, "", err
	}
	var firstErr error
	for i := len(ids) - 1; i >= 0; i-- {
		snap, err := Load(st, ids[i])
		if err == nil {
			return snap, ids[i], nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, "", fmt.Errorf("%w (no loadable snapshot: %v)", ErrNotFound, firstErr)
	}
	return nil, "", ErrNotFound
}

// Prune deletes all but the newest keep snapshots. keep < 1 is treated
// as 1 so the most recent recovery point always survives.
func Prune(st StateStore, keep int) error {
	if keep < 1 {
		keep = 1
	}
	ids, err := st.List()
	if err != nil {
		return err
	}
	for i := 0; i < len(ids)-keep; i++ {
		if err := st.Delete(ids[i]); err != nil {
			return err
		}
	}
	return nil
}

// MemStore is an in-memory StateStore: snapshots live exactly as long as
// the process. It is the natural backend for tests and for warm-start
// campaigns that fork variants from a checkpoint taken moments earlier.
// The zero value is ready to use.
type MemStore struct {
	mu   sync.Mutex
	recs map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

func (m *MemStore) Put(id string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.recs == nil {
		m.recs = make(map[string][]byte)
	}
	m.recs[id] = append([]byte(nil), data...)
	return nil
}

func (m *MemStore) Get(id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.recs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), data...), nil
}

func (m *MemStore) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.recs))
	for id := range m.recs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

func (m *MemStore) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.recs, id)
	return nil
}

const snapExt = ".g3snap"

// DirStore is a durable StateStore over a directory: one file per snapshot
// (`<id>.g3snap`), committed by writing a temporary file, fsyncing it, and
// renaming it into place — so a crash at any point leaves either the old
// record or the new one, never a torn file under a live ID. The directory
// itself is fsynced after rename so the new name survives a power cut.
type DirStore struct {
	dir string
	mu  sync.Mutex
}

// NewDirStore opens (creating if needed) a snapshot directory.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: open store: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the backing directory path.
func (d *DirStore) Dir() string { return d.dir }

func (d *DirStore) path(id string) (string, error) {
	// IDs become file names; refuse anything that could escape the
	// directory or collide with the temp-file namespace.
	if id == "" || strings.ContainsAny(id, "/\\") || strings.HasPrefix(id, ".") {
		return "", fmt.Errorf("checkpoint: invalid snapshot id %q", id)
	}
	return filepath.Join(d.dir, id+snapExt), nil
}

func (d *DirStore) Put(id string, data []byte) error {
	dst, err := d.path(id)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.dir, ".tmp-"+id+"-*")
	if err != nil {
		return fmt.Errorf("checkpoint: put %s: %w", id, err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: put %s: %w", id, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: put %s: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: put %s: %w", id, err)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: put %s: %w", id, err)
	}
	return d.syncDir()
}

// syncDir fsyncs the directory so a just-committed rename is durable. Some
// filesystems refuse to fsync directories; that is reported, not fatal to
// the data already written.
func (d *DirStore) syncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: sync store dir: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return fmt.Errorf("checkpoint: sync store dir: %w", err)
	}
	return nil
}

func (d *DirStore) Get(id string) ([]byte, error) {
	p, err := d.path(id)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: get %s: %w", id, err)
	}
	return data, nil
}

func (d *DirStore) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list store: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, snapExt) {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, snapExt))
	}
	sort.Strings(ids)
	return ids, nil
}

func (d *DirStore) Delete(id string) error {
	p, err := d.path(id)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("checkpoint: delete %s: %w", id, err)
	}
	return nil
}

// FileStore is a single-snapshot StateStore over one file path: Put always
// writes the one file (atomically, via a sibling temp file + rename), Get
// and List see whatever snapshot it currently holds. It backs the
// `grid3sim -checkpoint-out FILE` / `-restore FILE` surface, where a run
// produces exactly one checkpoint artifact.
type FileStore struct {
	path string
	mu   sync.Mutex
}

// NewFileStore returns a store over the given file path. The file need not
// exist yet.
func NewFileStore(path string) *FileStore { return &FileStore{path: path} }

// Path returns the backing file path.
func (f *FileStore) Path() string { return f.path }

func (f *FileStore) Put(id string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	dir := filepath.Dir(f.path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(f.path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: put %s: %w", f.path, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: put %s: %w", f.path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: put %s: %w", f.path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: put %s: %w", f.path, err)
	}
	if err := os.Rename(tmpName, f.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: put %s: %w", f.path, err)
	}
	return nil
}

func (f *FileStore) Get(id string) ([]byte, error) {
	data, err := os.ReadFile(f.path)
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: get %s: %w", f.path, err)
	}
	return data, nil
}

// List reports the held snapshot's ID by decoding the file. An absent file
// lists as empty; an undecodable one is an error — a FileStore holds the
// run's sole snapshot, so unlike DirStore there is no newer record to fall
// back to, and reporting "not found" would hide the corruption.
func (f *FileStore) List() ([]string, error) {
	data, err := os.ReadFile(f.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("checkpoint: list %s: %w", f.path, err)
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list %s: %w", f.path, err)
	}
	return []string{snap.ID()}, nil
}

func (f *FileStore) Delete(id string) error {
	if err := os.Remove(f.path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("checkpoint: delete %s: %w", f.path, err)
	}
	return nil
}
