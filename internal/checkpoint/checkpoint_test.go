package checkpoint

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"
	"time"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Scope:   ScopeServe,
		SimTime: 42 * time.Hour,
		Seed:    7,
		Events:  123456,
		Digest:  0xdeadbeefcafef00d,
		Config:  []byte(`{"seed":7,"horizon":"4320h"}`),
		Journal: []Op{
			{T: time.Hour, Kind: "enroll", Data: []byte(`{"vo":"cms"}`)},
			{T: 2 * time.Hour, Kind: "submit", Data: []byte(`{"vo":"cms","user":"u1"}`)},
			{T: 2 * time.Hour, Kind: "submit", Data: nil},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Scope != want.Scope || got.SimTime != want.SimTime || got.Seed != want.Seed ||
		got.Events != want.Events || got.Digest != want.Digest {
		t.Fatalf("header mismatch: got %+v want %+v", got, want)
	}
	if string(got.Config) != string(want.Config) {
		t.Fatalf("config mismatch: %q != %q", got.Config, want.Config)
	}
	if len(got.Journal) != len(want.Journal) {
		t.Fatalf("journal length %d != %d", len(got.Journal), len(want.Journal))
	}
	for i := range want.Journal {
		w, g := want.Journal[i], got.Journal[i]
		if g.T != w.T || g.Kind != w.Kind || string(g.Data) != string(w.Data) {
			t.Fatalf("journal[%d]: got %+v want %+v", i, g, w)
		}
	}
	if got.ID() != want.ID() {
		t.Fatalf("ID mismatch: %s != %s", got.ID(), want.ID())
	}
}

func TestDecodeEmptyJournalRoundTrip(t *testing.T) {
	want := &Snapshot{Scope: ScopeBatch, SimTime: time.Minute, Seed: 1, Config: []byte(`{}`)}
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Scope != ScopeBatch || len(got.Journal) != 0 {
		t.Fatalf("got %+v", got)
	}
}

// Every single-bit flip anywhere in the record must be rejected — the CRC
// catches all of them.
func TestDecodeRejectsBitFlips(t *testing.T) {
	enc := Encode(sampleSnapshot())
	for i := 0; i < len(enc); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), enc...)
			mut[i] ^= 1 << bit
			if snap, err := Decode(mut); err == nil {
				t.Fatalf("flip byte %d bit %d: decoded %+v, want error", i, bit, snap)
			}
		}
	}
}

// Every truncation prefix must be rejected, not partially parsed.
func TestDecodeRejectsTruncation(t *testing.T) {
	enc := Encode(sampleSnapshot())
	for n := 0; n < len(enc); n++ {
		if snap, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncated to %d bytes: decoded %+v, want error", n, snap)
		}
	}
}

func TestDecodeRejectsAppendedBytes(t *testing.T) {
	enc := Encode(sampleSnapshot())
	if _, err := Decode(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("decode of record with trailing byte succeeded")
	}
}

// reseal recomputes the trailing CRC so the mutation under test (not the
// checksum) is what Decode trips on.
func reseal(enc []byte) []byte {
	out := append([]byte(nil), enc...)
	body := out[:len(out)-4]
	binary.LittleEndian.PutUint32(out[len(out)-4:], crc32.ChecksumIEEE(body))
	return out
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	for _, v := range []uint16{0, 2, 99, 0xffff} {
		enc := Encode(sampleSnapshot())
		binary.LittleEndian.PutUint16(enc[6:8], v)
		_, err := Decode(reseal(enc))
		if !errors.Is(err, ErrBadVersion) {
			t.Fatalf("version %d: got %v, want ErrBadVersion", v, err)
		}
		if !strings.Contains(err.Error(), "this build reads") {
			t.Fatalf("version error should name the supported version: %v", err)
		}
	}
}

func TestDecodeRejectsUnknownScope(t *testing.T) {
	enc := Encode(sampleSnapshot())
	enc[8] = 0x7f
	if _, err := Decode(reseal(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	enc := Encode(sampleSnapshot())
	enc[0] = 'X'
	if _, err := Decode(enc); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("nil input: got %v, want ErrBadMagic", err)
	}
	if _, err := Decode([]byte("G3S")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("short input: got %v, want ErrBadMagic", err)
	}
}

// A length field inflated past the section ceiling must be rejected by the
// bound check (after resealing the CRC so the checksum is not what saves us).
func TestDecodeRejectsOversizedLengths(t *testing.T) {
	enc := Encode(&Snapshot{Scope: ScopeBatch, Config: []byte("x")})
	// Config length lives right after magic(6)+ver(2)+scope(1)+4 u64s(32).
	off := 6 + 2 + 1 + 32
	binary.LittleEndian.PutUint32(enc[off:off+4], maxConfigLen+1)
	if _, err := Decode(reseal(enc)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsJournalTimeDisorder(t *testing.T) {
	snap := sampleSnapshot()
	snap.Journal[1].T = 0 // before Journal[0]
	if _, err := Decode(Encode(snap)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestSnapshotIDSortsChronologically(t *testing.T) {
	a := (&Snapshot{SimTime: 9 * time.Hour, Digest: 0xff}).ID()
	b := (&Snapshot{SimTime: 10 * time.Hour, Digest: 0x01}).ID()
	if !(a < b) {
		t.Fatalf("IDs not time-ordered: %s >= %s", a, b)
	}
}

func TestScopeString(t *testing.T) {
	if ScopeBatch.String() != "batch" || ScopeServe.String() != "serve" {
		t.Fatal("scope names changed")
	}
	if Scope(9).String() != "scope(9)" {
		t.Fatalf("unknown scope: %s", Scope(9).String())
	}
}

func TestHasherPrimitives(t *testing.T) {
	h1, h2 := NewHasher(), NewHasher()
	h1.String("ab")
	h1.String("c")
	h2.String("a")
	h2.String("bc")
	if h1.Sum() == h2.Sum() {
		t.Fatal("length prefix failed: (ab,c) collides with (a,bc)")
	}
	h3 := NewHasher()
	h3.Word(1)
	h3.Int(-1)
	h3.Dur(time.Second)
	h3.Bool(true)
	h3.Float(0.5)
	h3.String("x")
	h4 := NewHasher()
	h4.Word(1)
	h4.Int(-1)
	h4.Dur(time.Second)
	h4.Bool(true)
	h4.Float(0.5)
	h4.String("x")
	if h3.Sum() != h4.Sum() {
		t.Fatal("identical walks hash differently")
	}
	if h3.Sum() == NewHasher().Sum() {
		t.Fatal("non-empty walk equals empty walk")
	}
}
