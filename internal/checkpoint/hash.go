package checkpoint

import (
	"math"
	"time"
)

// Hasher accumulates a deterministic 64-bit digest over a canonical walk of
// simulation state (FNV-1a). Every stateful subsystem exposes a HashState
// method that feeds its fields through one of these typed writers in a fixed
// order; the resulting sum is the snapshot's restore-verification witness —
// if a replayed run walks to a different sum, the snapshot does not describe
// the state the replay rebuilt and the restore is rejected.
//
// The walk must be a pure read: HashState implementations may sort copies of
// map keys, but must never touch query paths with side effects (soft-state
// pruning, cache refresh, RNG draws).
type Hasher struct {
	sum uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewHasher returns a Hasher at the FNV-1a offset basis.
func NewHasher() *Hasher { return &Hasher{sum: fnvOffset} }

func (h *Hasher) byte(b byte) {
	h.sum = (h.sum ^ uint64(b)) * fnvPrime
}

// Word folds a raw 64-bit value, little-endian.
func (h *Hasher) Word(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

// Int folds a signed integer.
func (h *Hasher) Int(v int64) { h.Word(uint64(v)) }

// Dur folds a time.Duration.
func (h *Hasher) Dur(d time.Duration) { h.Word(uint64(d)) }

// Bool folds a boolean.
func (h *Hasher) Bool(b bool) {
	if b {
		h.byte(1)
	} else {
		h.byte(0)
	}
}

// Float folds a float64 by its IEEE-754 bits.
func (h *Hasher) Float(f float64) { h.Word(math.Float64bits(f)) }

// String folds a length-prefixed string, so ("ab","c") and ("a","bc")
// cannot collide.
func (h *Hasher) String(s string) {
	h.Word(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

// Sum returns the digest of everything folded so far.
func (h *Hasher) Sum() uint64 { return h.sum }
