package acdc

import (
	"fmt"
	"math"
	"testing"
	"time"

	"grid3/internal/batch"
	"grid3/internal/sim"
)

// harness wires two sites' batch systems to a monitor.
type harness struct {
	eng *sim.Engine
	mon *Monitor
	sys map[string]*batch.System
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	eng := sim.NewEngine(sim.Grid3Epoch)
	mon := New(eng, sim.Grid3Epoch, time.Hour)
	h := &harness{eng: eng, mon: mon, sys: map[string]*batch.System{}}
	for _, name := range []string{"BNL", "UC"} {
		sys := batch.New(eng, batch.Config{Name: name, Slots: 50, EnforceWall: true, MaxWall: 2000 * time.Hour})
		mon.Watch(name, sys)
		h.sys[name] = sys
	}
	return h
}

func (h *harness) run(site, vo string, n int, runtime time.Duration) {
	for i := 0; i < n; i++ {
		h.sys[site].Submit(&batch.Job{
			ID: fmt.Sprintf("%s-%s-%d-%d", site, vo, h.eng.Now(), i), VO: vo,
			Walltime: runtime + time.Hour, Runtime: runtime,
		})
	}
}

func TestPullCollectsRecords(t *testing.T) {
	h := newHarness(t)
	h.run("BNL", "usatlas", 10, 2*time.Hour)
	h.run("UC", "usatlas", 5, time.Hour)
	h.eng.RunUntil(72 * time.Hour)
	h.mon.Pull()
	if h.mon.Len() != 15 {
		t.Fatalf("records = %d", h.mon.Len())
	}
	if vos := h.mon.VOs(); len(vos) != 1 || vos[0] != "usatlas" {
		t.Fatalf("VOs = %v", vos)
	}
}

func TestTickerPullsAutomatically(t *testing.T) {
	h := newHarness(t)
	h.run("BNL", "ivdgl", 3, 30*time.Minute)
	h.eng.RunUntil(3 * time.Hour) // ticker fires at 1h, 2h, 3h
	if h.mon.Len() != 3 {
		t.Fatalf("records after ticker = %d", h.mon.Len())
	}
}

func TestClassStats(t *testing.T) {
	h := newHarness(t)
	// 20 BNL jobs of 8h, 10 UC jobs of 2h.
	h.run("BNL", "usatlas", 20, 8*time.Hour)
	h.run("UC", "usatlas", 10, 2*time.Hour)
	// One failure: walltime kill.
	h.sys["UC"].Submit(&batch.Job{ID: "over", VO: "usatlas", Walltime: time.Hour, Runtime: 5 * time.Hour})
	h.eng.RunUntil(72 * time.Hour)
	h.mon.Pull()
	st := h.mon.Stats("usatlas")
	if st.Jobs != 30 || st.Failed != 1 {
		t.Fatalf("jobs %d failed %d", st.Jobs, st.Failed)
	}
	if st.SitesUsed != 2 {
		t.Fatalf("sites = %d", st.SitesUsed)
	}
	wantAvg := (20*8.0 + 10*2.0) / 30
	if math.Abs(st.AvgRuntimeHours-wantAvg) > 1e-9 {
		t.Fatalf("avg runtime = %v, want %v", st.AvgRuntimeHours, wantAvg)
	}
	if st.MaxRuntimeHours != 8 {
		t.Fatalf("max runtime = %v", st.MaxRuntimeHours)
	}
	wantCPU := (20*8.0 + 10*2.0) / 24
	if math.Abs(st.TotalCPUDays-wantCPU) > 1e-9 {
		t.Fatalf("cpu days = %v, want %v", st.TotalCPUDays, wantCPU)
	}
	if st.PeakMonth != "10-2003" {
		t.Fatalf("peak month = %q", st.PeakMonth)
	}
	if st.PeakMonthJobs != 30 || st.PeakResources != 2 {
		t.Fatalf("peak jobs %d resources %d", st.PeakMonthJobs, st.PeakResources)
	}
	if st.MaxSingleSiteJobs != 20 || math.Abs(st.MaxSingleSitePct-66.666) > 0.1 {
		t.Fatalf("single-site = %d [%f]", st.MaxSingleSiteJobs, st.MaxSingleSitePct)
	}
	wantEff := 30.0 / 31.0
	if math.Abs(st.Efficiency()-wantEff) > 1e-9 {
		t.Fatalf("efficiency = %v", st.Efficiency())
	}
}

func TestStatsEmptyVO(t *testing.T) {
	h := newHarness(t)
	st := h.mon.Stats("ligo")
	if st.Jobs != 0 || st.Efficiency() != 0 || st.PeakMonth != "" {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestPeakMonthSelection(t *testing.T) {
	h := newHarness(t)
	// 5 jobs completing in October, 12 in November, 3 in December.
	h.run("BNL", "uscms", 5, time.Hour)
	h.eng.RunUntil(20 * 24 * time.Hour) // Nov 12
	h.run("BNL", "uscms", 12, time.Hour)
	h.eng.RunUntil(60 * 24 * time.Hour) // Dec 22
	h.run("BNL", "uscms", 3, time.Hour)
	h.eng.RunUntil(61 * 24 * time.Hour)
	h.mon.Pull()
	st := h.mon.Stats("uscms")
	if st.PeakMonth != "11-2003" || st.PeakMonthJobs != 12 {
		t.Fatalf("peak = %s (%d jobs)", st.PeakMonth, st.PeakMonthJobs)
	}
	months, counts := h.mon.JobsByMonth()
	if len(months) != 3 || months[0] != "10-2003" || months[1] != "11-2003" || months[2] != "12-2003" {
		t.Fatalf("months = %v", months)
	}
	if counts[0] != 5 || counts[1] != 12 || counts[2] != 3 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestCPUDaysByVOOverlap(t *testing.T) {
	h := newHarness(t)
	// One 48h job starting at t=0.
	h.run("BNL", "btev", 1, 48*time.Hour)
	h.eng.RunUntil(50 * time.Hour)
	h.mon.Pull()
	// Window covering only the first 24h: half the job's CPU time.
	byVO := h.mon.CPUDaysByVO(0, 24*time.Hour)
	if math.Abs(byVO["btev"]-1.0) > 1e-9 {
		t.Fatalf("overlap cpu days = %v, want 1.0", byVO["btev"])
	}
	// Full window: 2 CPU-days.
	byVO = h.mon.CPUDaysByVO(0, 100*time.Hour)
	if math.Abs(byVO["btev"]-2.0) > 1e-9 {
		t.Fatalf("full cpu days = %v", byVO["btev"])
	}
}

func TestCPUDaysBySiteForVO(t *testing.T) {
	h := newHarness(t)
	h.run("BNL", "uscms", 4, 12*time.Hour)
	h.run("UC", "uscms", 2, 12*time.Hour)
	h.run("UC", "usatlas", 7, 12*time.Hour)
	h.eng.RunUntil(24 * time.Hour)
	h.mon.Pull()
	bySite := h.mon.CPUDaysBySiteForVO("uscms", 0, 1000*time.Hour)
	if math.Abs(bySite["BNL"]-2.0) > 1e-9 || math.Abs(bySite["UC"]-1.0) > 1e-9 {
		t.Fatalf("by site = %v", bySite)
	}
	if _, ok := bySite["FNAL"]; ok {
		t.Fatal("phantom site")
	}
}

func TestAvgCPUsByVO(t *testing.T) {
	h := newHarness(t)
	// 10 concurrent 24h usatlas jobs: 10 CPUs in use for day 1, 0 after.
	h.run("BNL", "usatlas", 10, 24*time.Hour)
	h.eng.RunUntil(25 * time.Hour)
	h.mon.Pull()
	series := h.mon.AvgCPUsByVO(0, 3*24*time.Hour, 24*time.Hour)
	atlas := series["usatlas"]
	if len(atlas) != 3 {
		t.Fatalf("bins = %d", len(atlas))
	}
	if math.Abs(atlas[0]-10) > 1e-9 || atlas[1] != 0 || atlas[2] != 0 {
		t.Fatalf("series = %v", atlas)
	}
	if h.mon.AvgCPUsByVO(0, 0, time.Hour) != nil {
		t.Fatal("degenerate window should return nil")
	}
}

func TestMonthFormatting(t *testing.T) {
	r := JobRecord{Record: batch.Record{Ended: 9 * 24 * time.Hour}}
	if got := r.Month(sim.Grid3Epoch); got != "11-2003" {
		t.Fatalf("month = %q, want 11-2003 (epoch Oct 23 + 9 days)", got)
	}
}
