// Package acdc implements the ACDC Job Monitor from the University at
// Buffalo's Advanced Computational Data Center (§5.2): pull-based
// collection of job records from every site's local job manager into a
// web-visible warehouse, and the aggregate queries behind the paper's
// Table 1 ("Grid3 computational job statistics ... source ACDC University
// at Buffalo").
package acdc

import (
	"fmt"
	"sort"
	"time"

	"grid3/internal/batch"
	"grid3/internal/sim"
)

// JobRecord is one warehouse row: a batch completion record plus the site
// it ran at.
type JobRecord struct {
	Site string
	batch.Record
}

// Month renders the record's completion month as "MM-YYYY" (the Table 1
// "Peak Production Month-Year" format), given the scenario epoch.
func (r JobRecord) Month(epoch time.Time) string {
	t := epoch.Add(r.Ended)
	return fmt.Sprintf("%02d-%d", int(t.Month()), t.Year())
}

// source is one watched batch system.
type source struct {
	site string
	sys  *batch.System
}

// Monitor pulls completion logs from all watched sites on a fixed
// interval — "collects information from local job managers using a typical
// pull-based model".
type Monitor struct {
	eng     sim.Scheduler
	epoch   time.Time
	sources []source
	ticker  *sim.Ticker
	records []JobRecord
	// Ignore lists VO names whose records are dropped at collection time
	// (local non-grid jobs on shared facilities).
	Ignore map[string]bool

	// Stage, when set, receives each pulled record instead of the direct
	// warehouse append; the ingest batcher commits staged batches back
	// through Commit. PreRead, when set, runs before every warehouse
	// read so staged records land first (read-your-writes).
	Stage   func(JobRecord)
	PreRead func()

	// cpuByVO tallies completed CPU seconds per VO incrementally at
	// append time, so the usage ledger's per-window sampling is O(#VOs)
	// instead of a warehouse rescan per seal.
	cpuByVO map[string]uint64
}

// New creates a monitor pulling every interval. epoch anchors month
// bucketing (the Grid3 scenario epoch).
func New(eng sim.Scheduler, epoch time.Time, interval time.Duration) *Monitor {
	m := &Monitor{eng: eng, epoch: epoch, cpuByVO: make(map[string]uint64)}
	m.ticker = sim.NewTicker(eng, interval, m.Pull)
	return m
}

// Watch adds a site's batch system to the polling set.
func (m *Monitor) Watch(siteName string, sys *batch.System) {
	m.sources = append(m.sources, source{site: siteName, sys: sys})
}

// Pull drains every watched system's completion log into the warehouse.
// The ticker calls this periodically; call it once more at scenario end to
// capture the tail.
func (m *Monitor) Pull() {
	for _, src := range m.sources {
		for _, r := range src.sys.DrainRecords() {
			if m.Ignore != nil && m.Ignore[r.VO] {
				continue
			}
			rec := JobRecord{Site: src.site, Record: r}
			if m.Stage != nil {
				m.Stage(rec)
			} else {
				m.account(rec)
				m.records = append(m.records, rec)
			}
		}
	}
}

// Commit appends a staged batch to the warehouse — the ingest batcher's
// commit function.
func (m *Monitor) Commit(recs []JobRecord) {
	for _, r := range recs {
		m.account(r)
	}
	m.records = append(m.records, recs...)
}

// account folds one record into the incremental per-VO CPU tally.
func (m *Monitor) account(r JobRecord) {
	if r.Outcome == batch.Completed {
		m.cpuByVO[r.VO] += uint64(r.Runtime() / time.Second)
	}
}

// preRead runs the read barrier, if any.
func (m *Monitor) preRead() {
	if m.PreRead != nil {
		m.PreRead()
	}
}

// Stop halts polling.
func (m *Monitor) Stop() { m.ticker.Stop() }

// Records returns the warehouse contents (live slice; do not mutate).
func (m *Monitor) Records() []JobRecord {
	m.preRead()
	return m.records
}

// Len returns the warehouse row count.
func (m *Monitor) Len() int {
	m.preRead()
	return len(m.records)
}

// CPUSecondsByVO returns cumulative completed CPU seconds per VO over
// the whole warehouse — the ledger's per-window accounting source
// (window deltas of this map). The returned map is a fresh copy.
func (m *Monitor) CPUSecondsByVO() map[string]uint64 {
	m.preRead()
	out := make(map[string]uint64, len(m.cpuByVO))
	for k, v := range m.cpuByVO {
		out[k] = v
	}
	return out
}

// ClassStats is one Table 1 column.
type ClassStats struct {
	VO              string
	Jobs            int // completed production jobs
	SitesUsed       int
	AvgRuntimeHours float64
	MaxRuntimeHours float64
	TotalCPUDays    float64
	// Peak production month (by completed jobs).
	PeakMonth         string
	PeakMonthJobs     int
	PeakMonthCPUDays  float64
	PeakResources     int // sites used during the peak month
	MaxSingleSiteJobs int // most jobs from one site in the peak month
	MaxSingleSitePct  float64
	// Efficiency counts all terminal records, not just completions.
	Failed int
}

// Efficiency returns completed/(completed+failed), the §7 job-completion
// metric; 0 when no jobs ran.
func (s ClassStats) Efficiency() float64 {
	total := s.Jobs + s.Failed
	if total == 0 {
		return 0
	}
	return float64(s.Jobs) / float64(total)
}

// Stats computes the Table 1 column for one VO.
func (m *Monitor) Stats(vo string) ClassStats {
	m.preRead()
	st := ClassStats{VO: vo}
	sites := map[string]bool{}
	var totalRuntime time.Duration
	// month → (jobs, cpu, per-site jobs)
	type monthAgg struct {
		jobs   int
		cpu    time.Duration
		bySite map[string]int
	}
	months := map[string]*monthAgg{}

	for _, r := range m.records {
		if r.VO != vo {
			continue
		}
		if r.Outcome != batch.Completed {
			st.Failed++
			continue
		}
		st.Jobs++
		sites[r.Site] = true
		rt := r.Runtime()
		totalRuntime += rt
		if h := rt.Hours(); h > st.MaxRuntimeHours {
			st.MaxRuntimeHours = h
		}
		key := r.Month(m.epoch)
		agg := months[key]
		if agg == nil {
			agg = &monthAgg{bySite: map[string]int{}}
			months[key] = agg
		}
		agg.jobs++
		agg.cpu += rt
		agg.bySite[r.Site]++
	}
	st.SitesUsed = len(sites)
	if st.Jobs > 0 {
		st.AvgRuntimeHours = totalRuntime.Hours() / float64(st.Jobs)
		st.TotalCPUDays = totalRuntime.Hours() / 24
	}
	// Peak month by job count; ties break to the earlier month.
	keys := make([]string, 0, len(months))
	for k := range months {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return monthLess(keys[i], keys[j]) })
	for _, k := range keys {
		if months[k].jobs > st.PeakMonthJobs {
			st.PeakMonth = k
			st.PeakMonthJobs = months[k].jobs
		}
	}
	if st.PeakMonth != "" {
		agg := months[st.PeakMonth]
		st.PeakMonthCPUDays = agg.cpu.Hours() / 24
		st.PeakResources = len(agg.bySite)
		for _, n := range agg.bySite {
			if n > st.MaxSingleSiteJobs {
				st.MaxSingleSiteJobs = n
			}
		}
		st.MaxSingleSitePct = 100 * float64(st.MaxSingleSiteJobs) / float64(agg.jobs)
	}
	return st
}

// monthLess orders "MM-YYYY" keys chronologically.
func monthLess(a, b string) bool {
	var am, ay, bm, by int
	fmt.Sscanf(a, "%d-%d", &am, &ay)
	fmt.Sscanf(b, "%d-%d", &bm, &by)
	if ay != by {
		return ay < by
	}
	return am < bm
}

// VOs returns every VO present in the warehouse, sorted.
func (m *Monitor) VOs() []string {
	m.preRead()
	seen := map[string]bool{}
	for _, r := range m.records {
		seen[r.VO] = true
	}
	out := make([]string, 0, len(seen))
	for vo := range seen {
		out = append(out, vo)
	}
	sort.Strings(out)
	return out
}

// JobsByMonth counts completed jobs per month across all VOs — Figure 6,
// "Distribution of the number of jobs run on Grid3 by month". Keys are
// chronological.
func (m *Monitor) JobsByMonth() ([]string, []int) {
	m.preRead()
	counts := map[string]int{}
	for _, r := range m.records {
		if r.Outcome != batch.Completed {
			continue
		}
		counts[r.Month(m.epoch)]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return monthLess(keys[i], keys[j]) })
	out := make([]int, len(keys))
	for i, k := range keys {
		out[i] = counts[k]
	}
	return keys, out
}

// overlap returns the execution time a record spent inside (from, to].
func overlap(r JobRecord, from, to time.Duration) time.Duration {
	start, end := r.Started, r.Ended
	if start < from {
		start = from
	}
	if end > to {
		end = to
	}
	if end <= start {
		return 0
	}
	return end - start
}

// CPUDaysBySiteForVO returns CPU-days per site for one VO within
// (from, to] — the Figure 4 query (CMS cumulative usage by site). Jobs
// spanning the window boundary contribute only their overlap.
func (m *Monitor) CPUDaysBySiteForVO(vo string, from, to time.Duration) map[string]float64 {
	m.preRead()
	out := map[string]float64{}
	for _, r := range m.records {
		if r.VO != vo || r.Outcome != batch.Completed {
			continue
		}
		if d := overlap(r, from, to); d > 0 {
			out[r.Site] += d.Hours() / 24
		}
	}
	return out
}

// CPUDaysByVO returns CPU-days per VO within (from, to] — the Figure 2
// query (integrated usage by VO during the SC2003 window). Jobs spanning
// the window boundary contribute only their overlap.
func (m *Monitor) CPUDaysByVO(from, to time.Duration) map[string]float64 {
	m.preRead()
	out := map[string]float64{}
	for _, r := range m.records {
		if r.Outcome != batch.Completed {
			continue
		}
		if d := overlap(r, from, to); d > 0 {
			out[r.VO] += d.Hours() / 24
		}
	}
	return out
}

// AvgCPUsByVO returns the time-averaged number of CPUs in use per VO in
// each bin of width bin across (from, to] — the Figure 3 query
// (differential usage). The result maps VO → one value per bin.
func (m *Monitor) AvgCPUsByVO(from, to, bin time.Duration) map[string][]float64 {
	m.preRead()
	if bin <= 0 || to <= from {
		return nil
	}
	nbins := int((to - from + bin - 1) / bin)
	out := map[string][]float64{}
	for _, r := range m.records {
		if r.Outcome != batch.Completed {
			continue
		}
		series := out[r.VO]
		if series == nil {
			series = make([]float64, nbins)
			out[r.VO] = series
		}
		first, last := 0, nbins-1
		if r.Started > from {
			first = int((r.Started - from) / bin)
		}
		if r.Ended < to {
			last = int((r.Ended - from) / bin)
			if last >= nbins {
				last = nbins - 1
			}
		}
		for b := first; b <= last && b >= 0; b++ {
			bFrom := from + time.Duration(b)*bin
			bTo := bFrom + bin
			if bTo > to {
				bTo = to
			}
			if d := overlap(r, bFrom, bTo); d > 0 {
				series[b] += float64(d) / float64(bTo-bFrom)
			}
		}
	}
	return out
}
