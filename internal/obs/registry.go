package obs

import (
	"fmt"
	"io"
	"sort"
)

// DurationBounds is the default histogram bucket ladder for sim-time
// latencies, in seconds: sub-second through a week, roughly geometric.
// Grid3 stage latencies span five orders of magnitude (a GRAM auth is
// instantaneous; a CMS OSCAR job runs 30+ hours; a match can wait days on a
// saturated grid), so the ladder is wide rather than fine.
var DurationBounds = []float64{
	0.5, 1, 2, 5, 10, 30,
	60, 120, 300, 600, 1800,
	3600, 7200, 14400, 43200,
	86400, 172800, 604800,
}

// Counter is a monotonically increasing uint64. A nil *Counter is a valid
// disabled counter: Add/Inc are no-ops and Value is zero, mirroring the nil
// Tracer contract so instrument structs can be wired partially.
type Counter struct {
	name string
	v    uint64
}

// Name returns the registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge reports an instantaneous value through a closure, sampled only when
// a snapshot or the MonALISA bridge reads it.
type Gauge struct {
	name string
	fn   func() float64
}

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Value samples the gauge.
func (g *Gauge) Value() float64 {
	if g == nil || g.fn == nil {
		return 0
	}
	return g.fn()
}

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is >= the value, or in the overflow bucket. The
// bounds are fixed at registration, so Observe is a linear scan over a
// small array — no allocation, no map.
type Histogram struct {
	name   string
	bounds []float64
	counts []uint64 // len(bounds)+1; last is overflow
	sum    float64
	n      uint64
}

// Name returns the registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) estimated by linear
// interpolation within the bucket where the rank falls. Values in the
// overflow bucket report the last bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// Snapshot copies the histogram state into a mergeable value.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Name:   h.name,
		Bounds: h.bounds, // bounds are immutable after registration
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		N:      h.n,
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, safe to merge across
// scenario runs: the campaign sweeper merges per-seed snapshots of the same
// histogram and quantiles the union, which is how per-stage latency error
// bars are produced without shipping raw spans between goroutines.
type HistSnapshot struct {
	Name   string
	Bounds []float64
	Counts []uint64
	Sum    float64
	N      uint64
}

// Merge adds another snapshot of the same histogram shape into s.
// Mismatched bucket layouts are ignored rather than corrupting the merge.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if len(s.Counts) == 0 {
		s.Name, s.Bounds = o.Name, o.Bounds
		s.Counts = append([]uint64(nil), o.Counts...)
		s.Sum, s.N = o.Sum, o.N
		return
	}
	if len(o.Counts) != len(s.Counts) {
		return
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Sum += o.Sum
	s.N += o.N
}

// Mean returns the average observation, or 0 with no observations.
func (s HistSnapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Quantile estimates the q-quantile by interpolating inside the bucket
// containing the rank. The overflow bucket reports the last bound.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.N == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.N)
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) { // overflow bucket: no upper bound to lerp to
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Registry is the scenario-wide metrics namespace. Metrics are get-or-create
// by name; iteration (snapshots, the text exporter, the MonALISA bridge) is
// in registration order, which is deterministic because the whole simulation
// is. A nil *Registry hands out nil metrics, which are themselves no-ops.
type Registry struct {
	counters map[string]*Counter
	hists    map[string]*Histogram
	gauges   map[string]*Gauge

	counterOrder []*Counter
	histOrder    []*Histogram
	gaugeOrder   []*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
		gauges:   map[string]*Gauge{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	r.counterOrder = append(r.counterOrder, c)
	return c
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket upper bounds on first use (later calls keep the original
// bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{
		name:   name,
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
	}
	r.hists[name] = h
	r.histOrder = append(r.histOrder, h)
	return h
}

// Gauge registers (or replaces) the named gauge closure.
func (r *Registry) Gauge(name string, fn func() float64) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		g.fn = fn
		return g
	}
	g := &Gauge{name: name, fn: fn}
	r.gauges[name] = g
	r.gaugeOrder = append(r.gaugeOrder, g)
	return g
}

// CounterSample and GaugeSample are snapshot rows.
type CounterSample struct {
	Name  string
	Value uint64
}

// GaugeSample is one sampled gauge.
type GaugeSample struct {
	Name  string
	Value float64
}

// Snapshot captures every metric. Counters and histograms come back in
// registration order; gauges are sampled at call time.
type Snapshot struct {
	Counters   []CounterSample
	Gauges     []GaugeSample
	Histograms []HistSnapshot
}

// Snapshot samples the whole registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	s := &Snapshot{}
	for _, c := range r.counterOrder {
		s.Counters = append(s.Counters, CounterSample{Name: c.name, Value: c.v})
	}
	for _, g := range r.gaugeOrder {
		s.Gauges = append(s.Gauges, GaugeSample{Name: g.name, Value: g.Value()})
	}
	for _, h := range r.histOrder {
		s.Histograms = append(s.Histograms, h.Snapshot())
	}
	return s
}

// WriteText renders the snapshot as an aligned, human-readable report:
// counters, then gauges, then histograms with count/mean/p50/p90/p99.
// Metrics with zero activity are skipped so a lightly-instrumented run
// stays readable.
func (s *Snapshot) WriteText(w io.Writer) error {
	if len(s.Counters) > 0 {
		if _, err := fmt.Fprintln(w, "# counters"); err != nil {
			return err
		}
		for _, c := range s.Counters {
			if c.Value == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%-40s %12d\n", c.Name, c.Value); err != nil {
				return err
			}
		}
	}
	if len(s.Gauges) > 0 {
		if _, err := fmt.Fprintln(w, "# gauges"); err != nil {
			return err
		}
		for _, g := range s.Gauges {
			if g.Value == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%-40s %12.2f\n", g.Name, g.Value); err != nil {
				return err
			}
		}
	}
	if len(s.Histograms) > 0 {
		if _, err := fmt.Fprintln(w, "# histograms (count mean p50 p90 p99)"); err != nil {
			return err
		}
		for _, h := range s.Histograms {
			if h.N == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%-40s %12d %12.2f %12.2f %12.2f %12.2f\n",
				h.Name, h.N, h.Mean(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)); err != nil {
				return err
			}
		}
	}
	return nil
}

// StageLatencies extracts the per-stage span-duration snapshots
// ("span.<kind>.seconds") keyed by stage name, the shape the campaign
// aggregator merges across seeds.
func (s *Snapshot) StageLatencies() map[string]HistSnapshot {
	out := map[string]HistSnapshot{}
	for _, h := range s.Histograms {
		const prefix, suffix = "span.", ".seconds"
		if len(h.Name) > len(prefix)+len(suffix) &&
			h.Name[:len(prefix)] == prefix && h.Name[len(h.Name)-len(suffix):] == suffix {
			out[h.Name[len(prefix):len(h.Name)-len(suffix)]] = h
		}
	}
	return out
}

// SortedStageNames returns the stage keys of a StageLatencies map in a
// stable order for rendering.
func SortedStageNames(m map[string]HistSnapshot) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
