package obs

import (
	"fmt"
	"io"
	"sort"
)

// Trace is the query and export view over a set of recorded spans. It is
// built once, after the run, from the tracer's span arena — exporters never
// run on the simulation hot path, and in parallel sweeps each scenario's
// trace is flushed by its own goroutine after the engine stops.
type Trace struct {
	spans    []Span
	children map[SpanID][]SpanID // built lazily
}

// NewTrace wraps spans (creation-ordered, as Tracer.Spans returns them).
func NewTrace(spans []Span) *Trace { return &Trace{spans: spans} }

// Len returns the number of spans.
func (tr *Trace) Len() int { return len(tr.spans) }

// Spans returns all spans in creation order.
func (tr *Trace) Spans() []Span { return tr.spans }

// Span returns the span with the given ID.
func (tr *Trace) Span(id SpanID) (Span, bool) {
	if id == 0 || int(id) > len(tr.spans) {
		return Span{}, false
	}
	return tr.spans[id-1], true
}

// ByJob returns every span recorded for the given job ID, in creation order.
func (tr *Trace) ByJob(job string) []Span {
	var out []Span
	for _, s := range tr.spans {
		if s.Job == job {
			out = append(out, s)
		}
	}
	return out
}

// Roots returns the parentless spans (whole-job and workflow spans).
func (tr *Trace) Roots() []Span {
	var out []Span
	for _, s := range tr.spans {
		if s.Parent == 0 {
			out = append(out, s)
		}
	}
	return out
}

func (tr *Trace) index() {
	if tr.children != nil {
		return
	}
	tr.children = make(map[SpanID][]SpanID)
	for _, s := range tr.spans {
		if s.Parent != 0 {
			tr.children[s.Parent] = append(tr.children[s.Parent], s.ID)
		}
	}
}

// Children returns the direct children of a span, in creation order.
func (tr *Trace) Children(id SpanID) []Span {
	tr.index()
	ids := tr.children[id]
	out := make([]Span, 0, len(ids))
	for _, c := range ids {
		out = append(out, tr.spans[c-1])
	}
	return out
}

// CriticalPath walks from root to the leaf that finished last, following at
// each level the child with the latest End — the chain of stages that
// determined the root's completion time. Open spans (no End yet) are
// treated as ending at the root's own end, so a cut-off DAG still yields a
// path. The root span itself is the first element.
func (tr *Trace) CriticalPath(root SpanID) []Span {
	rs, ok := tr.Span(root)
	if !ok {
		return nil
	}
	tr.index()
	path := []Span{rs}
	cur := rs
	for {
		ids := tr.children[cur.ID]
		if len(ids) == 0 {
			return path
		}
		best, bestEnd := Span{}, int64(-1)
		for _, id := range ids {
			c := tr.spans[id-1]
			end := int64(c.End)
			if !c.Ended() {
				end = int64(rs.End)
			}
			if end > bestEnd {
				best, bestEnd = c, end
			}
		}
		path = append(path, best)
		cur = best
	}
}

// Slowest returns the n longest ended spans, longest first, ties broken by
// span ID so the order is deterministic.
func (tr *Trace) Slowest(n int) []Span {
	ended := make([]Span, 0, len(tr.spans))
	for _, s := range tr.spans {
		if s.Ended() {
			ended = append(ended, s)
		}
	}
	sort.Slice(ended, func(i, j int) bool {
		di, dj := ended[i].Duration(), ended[j].Duration()
		if di != dj {
			return di > dj
		}
		return ended[i].ID < ended[j].ID
	})
	if n > len(ended) {
		n = len(ended)
	}
	return ended[:n]
}

// WriteJSONL renders one span per line with a fixed key order, so the dump
// is diffable across runs and trivially parseable by line tools (the
// trace-demo script extracts fields with awk, no JSON parser needed). Open
// spans carry end_s and dur_s of -1.
func (tr *Trace) WriteJSONL(w io.Writer) error {
	for _, s := range tr.spans {
		endS, durS := -1.0, -1.0
		if s.Ended() {
			endS = s.End.Seconds()
			durS = (s.End - s.Start).Seconds()
		}
		var err error
		if s.Kind == KindTransfer {
			_, err = fmt.Fprintf(w,
				`{"id":%d,"parent":%d,"kind":%q,"job":%q,"vo":%q,"site":%q,"peer":%q,"bytes":%d,"start_s":%.3f,"end_s":%.3f,"dur_s":%.3f,"err":%q}`+"\n",
				s.ID, s.Parent, s.Kind.String(), s.Job, s.VO, s.Site, s.Peer, s.Bytes,
				s.Start.Seconds(), endS, durS, s.Err)
		} else {
			_, err = fmt.Fprintf(w,
				`{"id":%d,"parent":%d,"kind":%q,"job":%q,"vo":%q,"site":%q,"start_s":%.3f,"end_s":%.3f,"dur_s":%.3f,"err":%q}`+"\n",
				s.ID, s.Parent, s.Kind.String(), s.Job, s.VO, s.Site,
				s.Start.Seconds(), endS, durS, s.Err)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// nlEvent is one rendered NetLogger line with its sort key.
type nlEvent struct {
	at   float64
	id   SpanID
	end  bool // start lines sort before end lines at the same instant
	line string
}

// WriteNetLogger renders the trace in the classic NetLogger "NL" line
// format, in event-time order. Transfer spans render exactly the lines the
// internal/gridftp NetLogger shim produced (PROG=gridftp, DEST=, BYTES=),
// so this exporter subsumes it; every other span kind renders as
// PROG=grid3 with span.<kind>.start/end/error events.
func (tr *Trace) WriteNetLogger(w io.Writer) error {
	events := make([]nlEvent, 0, 2*len(tr.spans))
	for _, s := range tr.spans {
		if s.Kind == KindTransfer {
			events = append(events, nlEvent{
				at: s.Start.Seconds(), id: s.ID,
				line: fmt.Sprintf("DATE=%.3f HOST=%s PROG=gridftp NL.EVNT=gridftp.transfer.start DEST=%s BYTES=%d",
					s.Start.Seconds(), s.Site, s.Peer, s.Bytes),
			})
			if s.Ended() {
				evnt, suffix := "gridftp.transfer.end", ""
				if s.Err != "" {
					evnt, suffix = "gridftp.transfer.error", fmt.Sprintf(" ERR=%q", s.Err)
				}
				events = append(events, nlEvent{
					at: s.End.Seconds(), id: s.ID, end: true,
					line: fmt.Sprintf("DATE=%.3f HOST=%s PROG=gridftp NL.EVNT=%s DEST=%s BYTES=%d%s",
						s.End.Seconds(), s.Site, evnt, s.Peer, s.Bytes, suffix),
				})
			}
			continue
		}
		events = append(events, nlEvent{
			at: s.Start.Seconds(), id: s.ID,
			line: fmt.Sprintf("DATE=%.3f HOST=%s PROG=grid3 NL.EVNT=span.%s.start JOB=%s VO=%s",
				s.Start.Seconds(), s.Site, s.Kind, s.Job, s.VO),
		})
		if s.Ended() {
			evnt, suffix := fmt.Sprintf("span.%s.end", s.Kind), ""
			if s.Err != "" {
				evnt, suffix = fmt.Sprintf("span.%s.error", s.Kind), fmt.Sprintf(" ERR=%q", s.Err)
			}
			events = append(events, nlEvent{
				at: s.End.Seconds(), id: s.ID, end: true,
				line: fmt.Sprintf("DATE=%.3f HOST=%s PROG=grid3 NL.EVNT=%s JOB=%s VO=%s%s",
					s.End.Seconds(), s.Site, evnt, s.Job, s.VO, suffix),
			})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		if events[i].end != events[j].end {
			return !events[i].end
		}
		return events[i].id < events[j].id
	})
	for _, e := range events {
		if _, err := fmt.Fprintln(w, e.line); err != nil {
			return err
		}
	}
	return nil
}

// TraceSink consumes a finished trace; MetricsSink consumes a final metrics
// snapshot. Both run after the engine has stopped.
type TraceSink func(*Trace) error

// MetricsSink consumes the end-of-run metrics snapshot.
type MetricsSink func(*Snapshot) error

// JSONLSink returns a TraceSink writing the JSONL dump to w.
func JSONLSink(w io.Writer) TraceSink {
	return func(tr *Trace) error { return tr.WriteJSONL(w) }
}

// NetLoggerSink returns a TraceSink writing NetLogger NL lines to w.
func NetLoggerSink(w io.Writer) TraceSink {
	return func(tr *Trace) error { return tr.WriteNetLogger(w) }
}

// TextMetricsSink returns a MetricsSink writing the text snapshot to w.
func TextMetricsSink(w io.Writer) MetricsSink {
	return func(s *Snapshot) error { return s.WriteText(w) }
}
