// Package obs is the simulator's own observability substrate: job-lifecycle
// spans and a metrics registry shared by the whole middleware stack.
//
// The paper's monitoring chapter (Ganglia → MonALISA → RRD, ACDC) observes
// the *grid*; obs observes the *simulation of the grid* — it follows one job
// across VOMS → Pegasus → DAGMan → Condor-G → GRAM → batch → stage-out and
// aggregates per-stage latency, queue depths, transfer throughput, and
// failure kinds, which is what production-grid operations papers (INFN-GRID)
// identify as the difference between a debuggable grid and a black box.
//
// Everything here is built to cost nothing when disabled: the Tracer is a
// pointer whose methods are nil-receiver no-ops, so instrumented hot paths
// pay one predictable branch and zero allocations when observability is off
// (asserted by a test), keeping seeded runs bit-identical to the
// pre-instrumentation simulator. When enabled, spans are appended to an
// arena and histograms are fixed-bucket arrays — no maps or interface calls
// on the hot path.
//
// Spans are recorded against sim-time (time.Duration offsets from the
// engine epoch) with parent/child links, so a DAG's critical path is
// queryable after the run (Trace.CriticalPath). Exporters render JSONL
// (Trace.WriteJSONL), a text metrics snapshot (Snapshot.WriteText), and the
// classic NetLogger "NL" line format (Trace.WriteNetLogger), which subsumes
// the transfer-only NetLogger shim in internal/gridftp.
package obs

import "time"

// Kind classifies a span: one job-lifecycle stage, or one of the
// workflow-level activities.
type Kind uint8

// Span kinds. The first block is the per-job lifecycle in causal order;
// the second block is workflow machinery.
const (
	KindJob      Kind = iota // whole lifetime, submit → done/failed
	KindSubmit               // Grid.SubmitJob: AUP check, schedd enqueue
	KindMatch                // Condor-G idle queue → matched to a resource
	KindGramAuth             // GRAM gatekeeper: auth + admission
	KindStageIn              // input staging transfer window
	KindRun                  // batch execution, start → end
	KindStageOut             // output archive + registration
	KindTransfer             // one GridFTP transfer
	KindWorkflow             // one DAG execution
	KindDAGNode              // one DAG node attempt
	KindPlan                 // one Pegasus planning pass
	KindOutage               // one detected service outage: breaker open → close
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindJob:
		return "job"
	case KindSubmit:
		return "submit"
	case KindMatch:
		return "match"
	case KindGramAuth:
		return "gram-auth"
	case KindStageIn:
		return "stage-in"
	case KindRun:
		return "run"
	case KindStageOut:
		return "stage-out"
	case KindTransfer:
		return "transfer"
	case KindWorkflow:
		return "workflow"
	case KindDAGNode:
		return "dag-node"
	case KindPlan:
		return "plan"
	case KindOutage:
		return "outage"
	}
	return "unknown"
}

// SpanID identifies a span within one Tracer. The zero SpanID means "no
// span" — it is what a nil Tracer hands out, and it is always safe to pass
// back into any Tracer method or along as a parent.
type SpanID uint64

// Span is one recorded lifecycle interval on the sim clock.
type Span struct {
	ID     SpanID
	Parent SpanID // 0 = root
	Kind   Kind
	Job    string // grid job ID, transfer label, or workflow name
	VO     string
	Site   string // execution site; transfer source for KindTransfer
	Peer   string // transfer destination (KindTransfer only)
	Bytes  int64  // transfer size (KindTransfer only)
	Start  time.Duration
	End    time.Duration
	Err    string // non-empty if the stage failed
	ended  bool
}

// Ended reports whether the span was closed (End/Fail called). Spans still
// open when the scenario horizon ends — jobs cut off mid-flight — stay
// unended.
func (s Span) Ended() bool { return s.ended }

// Duration is End-Start for ended spans and -1 for open ones.
func (s Span) Duration() time.Duration {
	if !s.ended {
		return -1
	}
	return s.End - s.Start
}

// Tracer records spans against a sim clock. A nil *Tracer is the disabled
// tracer: every method is a no-op and Begin returns SpanID 0, so
// instrumented code never branches on "is tracing on" beyond the receiver
// nil check the method itself performs.
type Tracer struct {
	clock  func() time.Duration
	spans  []Span
	byKind [numKinds]*Histogram // per-stage duration histograms, may be nil
}

// NewTracer returns an enabled tracer reading sim-time from clock. If reg is
// non-nil, every ended span feeds a per-kind duration histogram
// ("span.<kind>.seconds") registered there — the per-stage latency data the
// campaign aggregator quantiles across seeds.
func NewTracer(clock func() time.Duration, reg *Registry) *Tracer {
	t := &Tracer{clock: clock}
	if reg != nil {
		for k := Kind(0); k < numKinds; k++ {
			t.byKind[k] = reg.Histogram("span."+k.String()+".seconds", DurationBounds)
		}
	}
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Begin opens a span of the given kind under parent (0 for a root span) and
// returns its ID. On a nil tracer it returns 0.
func (t *Tracer) Begin(kind Kind, parent SpanID, job, vo, site string) SpanID {
	if t == nil {
		return 0
	}
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Kind: kind,
		Job: job, VO: vo, Site: site,
		Start: t.clock(), End: -1,
	})
	return id
}

// BeginTransfer opens a KindTransfer span carrying the transfer endpoints
// and size, so the NetLogger exporter can render the classic
// gridftp.transfer.* lines.
func (t *Tracer) BeginTransfer(parent SpanID, label, vo, src, dst string, bytes int64) SpanID {
	id := t.Begin(KindTransfer, parent, label, vo, src)
	if id != 0 {
		sp := &t.spans[id-1]
		sp.Peer = dst
		sp.Bytes = bytes
	}
	return id
}

// End closes a span at the current sim time. Safe on a nil tracer, on
// SpanID 0, and on already-ended spans.
func (t *Tracer) End(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	sp := &t.spans[id-1]
	if sp.ended {
		return
	}
	sp.ended = true
	sp.End = t.clock()
	if h := t.byKind[sp.Kind]; h != nil {
		h.Observe((sp.End - sp.Start).Seconds())
	}
}

// Fail closes a span recording a failure cause.
func (t *Tracer) Fail(id SpanID, cause string) {
	if t == nil || id == 0 {
		return
	}
	sp := &t.spans[id-1]
	if !sp.ended {
		sp.Err = cause
	}
	t.End(id)
}

// SetSite fills in the execution site once matchmaking has chosen it.
func (t *Tracer) SetSite(id SpanID, site string) {
	if t == nil || id == 0 {
		return
	}
	t.spans[id-1].Site = site
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Spans returns the recorded spans in creation order. The slice is the
// tracer's own storage; callers must not mutate it.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Trace returns the query/export view over everything recorded so far.
func (t *Tracer) Trace() *Trace { return NewTrace(t.Spans()) }

// Observer bundles the tracer and registry one scenario shares. A nil
// *Observer means observability is off; both fields of a non-nil Observer
// are always non-nil.
type Observer struct {
	Tracer  *Tracer
	Metrics *Registry
}

// New builds an enabled Observer on the given sim clock.
func New(clock func() time.Duration) *Observer {
	reg := NewRegistry()
	return &Observer{Tracer: NewTracer(clock, reg), Metrics: reg}
}

// TracerOf returns o's tracer, or nil (the disabled tracer) when o is nil.
func (o *Observer) TracerOf() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// Registry returns o's metrics registry, or nil when o is nil.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}
