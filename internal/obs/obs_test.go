package obs

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fakeClock is a settable sim clock.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

func TestNilTracerIsNoOpAndAllocFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		id := tr.Begin(KindJob, 0, "j", "vo", "site")
		tr.SetSite(id, "elsewhere")
		tr.End(id)
		tr.Fail(id, "nope")
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f per op, want 0", allocs)
	}
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer recorded spans")
	}
	var c *Counter
	var h *Histogram
	c.Inc()
	c.Add(7)
	h.Observe(3)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics recorded values")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Histogram("y", DurationBounds) != nil {
		t.Fatal("nil registry handed out live metrics")
	}
}

func TestEnabledTracerSteadyPathDoesNotAllocate(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.Now, nil)
	// Prime the arena so append has capacity, then measure the steady path.
	for i := 0; i < 4096; i++ {
		tr.End(tr.Begin(KindRun, 0, "j", "vo", "s"))
	}
	tr.spans = tr.spans[:0]
	allocs := testing.AllocsPerRun(1000, func() {
		id := tr.Begin(KindRun, 0, "j", "vo", "s")
		tr.End(id)
	})
	if allocs != 0 {
		t.Fatalf("steady-path Begin/End allocated %.1f per op, want 0", allocs)
	}
}

func TestSpanLifecycleAndKindHistograms(t *testing.T) {
	clk := &fakeClock{}
	reg := NewRegistry()
	tr := NewTracer(clk.Now, reg)

	root := tr.Begin(KindJob, 0, "grid3-usatlas-00000001", "usatlas", "")
	clk.now = 10 * time.Second
	match := tr.Begin(KindMatch, root, "grid3-usatlas-00000001", "usatlas", "")
	clk.now = 70 * time.Second
	tr.SetSite(match, "UC_ATLAS")
	tr.End(match)
	run := tr.Begin(KindRun, root, "grid3-usatlas-00000001", "usatlas", "UC_ATLAS")
	clk.now = 3670 * time.Second
	tr.End(run)
	tr.End(root)
	tr.End(root) // double-End must be a no-op

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[1].Site != "UC_ATLAS" || spans[1].Duration() != 60*time.Second {
		t.Fatalf("match span wrong: %+v", spans[1])
	}
	if spans[0].End != 3670*time.Second {
		t.Fatalf("root End = %v after double-End", spans[0].End)
	}
	h := reg.Histogram("span.run.seconds", DurationBounds)
	if h.Count() != 1 {
		t.Fatalf("run histogram count = %d, want 1", h.Count())
	}
	if q := h.Quantile(0.5); q <= 0 || q > 7200 {
		t.Fatalf("run p50 = %v, want within bucket ladder", q)
	}
}

func TestFailRecordsCause(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.Now, nil)
	id := tr.Begin(KindGramAuth, 0, "j", "vo", "site")
	tr.Fail(id, "gatekeeper overloaded")
	sp := tr.Spans()[0]
	if !sp.Ended() || sp.Err != "gatekeeper overloaded" {
		t.Fatalf("failed span wrong: %+v", sp)
	}
}

func TestRegistryDeterministicOrderAndQuantiles(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.second").Add(2)
	reg.Counter("a.first").Inc()
	if c := reg.Counter("b.second"); c.Value() != 2 {
		t.Fatalf("get-or-create returned a fresh counter: %d", c.Value())
	}
	h := reg.Histogram("lat", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q < 1 || q > 4 {
		t.Fatalf("p50 = %v, want in [1,4]", q)
	}
	if q := h.Quantile(1.0); q != 8 {
		t.Fatalf("overflow quantile = %v, want last bound 8", q)
	}
	reg.Gauge("depth", func() float64 { return 42 })

	s := reg.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "b.second" || s.Counters[1].Name != "a.first" {
		t.Fatalf("counter order not registration order: %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 42 {
		t.Fatalf("gauge snapshot wrong: %+v", s.Gauges)
	}

	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# counters", "b.second", "# gauges", "depth", "# histograms", "lat"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	bounds := []float64{1, 10}
	mk := func(vals ...float64) HistSnapshot {
		h := &Histogram{name: "x", bounds: bounds, counts: make([]uint64, 3)}
		for _, v := range vals {
			h.Observe(v)
		}
		return h.Snapshot()
	}
	a, b := mk(0.5, 5), mk(5, 50)
	var m HistSnapshot
	m.Merge(a)
	m.Merge(b)
	if m.N != 4 || m.Counts[0] != 1 || m.Counts[1] != 2 || m.Counts[2] != 1 {
		t.Fatalf("merge wrong: %+v", m)
	}
	if m.Sum != 60.5 {
		t.Fatalf("merged sum = %v", m.Sum)
	}
	// Mismatched shapes must not corrupt.
	m.Merge(HistSnapshot{Counts: []uint64{1}})
	if m.N != 4 {
		t.Fatal("mismatched merge changed N")
	}
}

func TestStageLatenciesExtraction(t *testing.T) {
	clk := &fakeClock{}
	reg := NewRegistry()
	tr := NewTracer(clk.Now, reg)
	id := tr.Begin(KindStageIn, 0, "j", "vo", "s")
	clk.now = 30 * time.Second
	tr.End(id)
	reg.Histogram("gridftp.throughput.mbps", []float64{1, 10, 100}).Observe(12)

	stages := reg.Snapshot().StageLatencies()
	if _, ok := stages["stage-in"]; !ok {
		t.Fatalf("stage-in missing from %v", SortedStageNames(stages))
	}
	if _, ok := stages["gridftp.throughput.mbps"]; ok {
		t.Fatal("non-span histogram leaked into stage latencies")
	}
	if stages["stage-in"].N != 1 {
		t.Fatalf("stage-in N = %d", stages["stage-in"].N)
	}
}

func buildChainTrace() (*Tracer, SpanID) {
	clk := &fakeClock{}
	tr := NewTracer(clk.Now, nil)
	root := tr.Begin(KindJob, 0, "j1", "uscms", "")
	fast := tr.Begin(KindMatch, root, "j1", "uscms", "")
	clk.now = 5 * time.Second
	tr.End(fast)
	slow := tr.Begin(KindRun, root, "j1", "uscms", "CIT_CMS")
	inner := tr.Begin(KindTransfer, slow, "j1", "uscms", "CIT_CMS")
	clk.now = 100 * time.Second
	tr.End(inner)
	clk.now = 200 * time.Second
	tr.End(slow)
	tr.End(root)
	return tr, root
}

func TestTraceQueries(t *testing.T) {
	tr, root := buildChainTrace()
	trace := tr.Trace()

	if got := trace.ByJob("j1"); len(got) != 4 {
		t.Fatalf("ByJob returned %d spans", len(got))
	}
	roots := trace.Roots()
	if len(roots) != 1 || roots[0].ID != root {
		t.Fatalf("Roots = %+v", roots)
	}
	path := trace.CriticalPath(root)
	if len(path) != 3 || path[1].Kind != KindRun || path[2].Kind != KindTransfer {
		t.Fatalf("critical path wrong: %+v", path)
	}
	slow := trace.Slowest(2)
	if len(slow) != 2 || slow[0].Kind != KindJob || slow[1].Kind != KindRun {
		t.Fatalf("Slowest wrong: %+v", slow)
	}
}

func TestJSONLExportShape(t *testing.T) {
	tr, _ := buildChainTrace()
	var buf bytes.Buffer
	if err := tr.Trace().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d JSONL lines, want 4", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"id":`) || !strings.Contains(l, `"dur_s":`) {
			t.Fatalf("malformed JSONL line: %s", l)
		}
	}
	if !strings.Contains(lines[0], `"kind":"job"`) {
		t.Fatalf("first line not the job span: %s", lines[0])
	}
}

func TestNetLoggerExportSubsumesTransferFormat(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.Now, nil)
	id := tr.BeginTransfer(0, "stage-in", "ligo", "archive", "PSU_LIGO", 4<<30)
	clk.now = 90 * time.Second
	tr.End(id)
	bad := tr.BeginTransfer(0, "stage-out", "ligo", "PSU_LIGO", "archive", 1<<20)
	clk.now = 95 * time.Second
	tr.Fail(bad, "disk full")
	auth := tr.Begin(KindGramAuth, 0, "j2", "ligo", "PSU_LIGO")
	tr.End(auth)

	var buf bytes.Buffer
	if err := tr.Trace().WriteNetLogger(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"DATE=0.000 HOST=archive PROG=gridftp NL.EVNT=gridftp.transfer.start DEST=PSU_LIGO BYTES=4294967296",
		"DATE=90.000 HOST=archive PROG=gridftp NL.EVNT=gridftp.transfer.end DEST=PSU_LIGO BYTES=4294967296",
		`NL.EVNT=gridftp.transfer.error DEST=archive BYTES=1048576 ERR="disk full"`,
		"PROG=grid3 NL.EVNT=span.gram-auth.start JOB=j2 VO=ligo",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("NetLogger output missing %q:\n%s", want, out)
		}
	}
	// Event-time order: the DATE fields must be non-decreasing.
	last := -1.0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		end := strings.Index(line, " ")
		d, err := strconv.ParseFloat(strings.TrimPrefix(line[:end], "DATE="), 64)
		if err != nil {
			t.Fatalf("unparseable line: %s", line)
		}
		if d < last {
			t.Fatalf("NetLogger lines out of time order:\n%s", out)
		}
		last = d
	}
}
