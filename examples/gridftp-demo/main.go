// GridFTP data transfer demonstrator (§4.7, §6.3) — both halves:
//
//  1. A real TCP GridFTP server/client session with GSI mutual
//     authentication, third-party-style relay between two servers, and a
//     NetLogger-instrumented simulated matrix
//  2. The Entrada-style periodic transfer matrix on the simulated WAN,
//     verifying the 2 TB/day milestone the way §6.3 did.
package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"grid3/internal/dist"
	"grid3/internal/gridftp"
	"grid3/internal/gsi"
	"grid3/internal/sim"
)

func main() {
	if err := realHalf(); err != nil {
		fmt.Fprintln(os.Stderr, "gridftp-demo:", err)
		os.Exit(1)
	}
	if err := simulatedHalf(); err != nil {
		fmt.Fprintln(os.Stderr, "gridftp-demo:", err)
		os.Exit(1)
	}
}

// realHalf runs genuine TCP servers and moves bytes between them.
func realHalf() error {
	now := time.Now()
	ca, err := gsi.NewCA("/CN=Grid3 demo CA", now.Add(-time.Hour), 24*time.Hour)
	if err != nil {
		return err
	}
	user, err := ca.Issue("/OU=People/CN=Transfer Study", now.Add(-time.Minute), 12*time.Hour)
	if err != nil {
		return err
	}
	proxy, err := gsi.NewProxy(user, now, 6*time.Hour)
	if err != nil {
		return err
	}
	gridmap := gsi.NewGridmap()
	gridmap.Map(user.Cert.Subject, "ivdgl")
	trust := gsi.NewTrustStore(ca.Certificate())

	// Two "sites", each a real TCP server.
	srcSrv := gridftp.NewServer(gridftp.NewFileStore(256<<20), trust, gridmap)
	dstSrv := gridftp.NewServer(gridftp.NewFileStore(256<<20), trust, gridmap)
	srcAddr, err := srcSrv.Serve()
	if err != nil {
		return err
	}
	defer srcSrv.Close()
	dstAddr, err := dstSrv.Serve()
	if err != nil {
		return err
	}
	defer dstSrv.Close()

	src, err := gridftp.Dial(srcAddr, proxy)
	if err != nil {
		return err
	}
	defer src.Close()
	dst, err := gridftp.Dial(dstAddr, proxy)
	if err != nil {
		return err
	}
	defer dst.Close()

	// Seed 8 files at the source, relay them all to the destination.
	payload := bytes.Repeat([]byte("grid3"), 1<<18) // ~1.3 MB
	start := time.Now()
	var moved int
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("/s2/band-%02d.sft", i)
		if err := src.Put(name, payload); err != nil {
			return err
		}
		data, err := src.Get(name)
		if err != nil {
			return err
		}
		if err := dst.Put(name, data); err != nil {
			return err
		}
		moved += len(data)
	}
	elapsed := time.Since(start)
	fmt.Printf("real TCP: authenticated as %q, relayed %d files (%.1f MB) in %v\n",
		src.Account, 8, float64(moved)/(1<<20), elapsed.Round(time.Millisecond))
	return nil
}

// simulatedHalf reruns §6.3 on the simulated WAN with NetLogger attached.
func simulatedHalf() error {
	eng := sim.NewEngine(sim.Grid3Epoch)
	net := gridftp.NewNetwork(eng)
	nl := gridftp.Attach(net)
	sites := []string{"BNL", "FNAL", "Caltech", "UCSD", "UFlorida", "UC", "IU", "LBNL"}
	for _, s := range sites {
		net.AddEndpoint(s, 622)
	}
	rng := dist.New(63)
	// The Entrada matrix: every 30 minutes, a wave of site-pair transfers
	// sized to sustain >2 TB/day.
	target := int64(2) << 40
	perSweep := float64(target) / 48
	sim.NewTicker(eng, 30*time.Minute, func() {
		var launched float64
		i := 0
		for launched < perSweep && i < 64 {
			src := sites[rng.Intn(len(sites))]
			dst := sites[rng.Intn(len(sites))]
			i++
			if src == dst {
				continue
			}
			size := int64(2<<30) + int64(rng.Intn(2<<30))
			launched += float64(size)
			net.Start(src, dst, size, "ivdgl", nil)
		}
	})
	const days = 7
	eng.RunUntil(days * 24 * time.Hour)

	var total int64
	for _, b := range net.BytesByLabel() {
		total += b
	}
	fmt.Printf("simulated WAN: %.2f TB in %d days (%.2f TB/day, milestone target 2-3) across %d transfers\n",
		float64(total)/(1<<40), days, float64(total)/(1<<40)/days, net.Completed())
	fmt.Printf("NetLogger captured %d start / %d end / %d error events; first records:\n",
		nl.Count(gridftp.EventStart), nl.Count(gridftp.EventEnd), nl.Count(gridftp.EventError))
	shown := 0
	for _, ev := range nl.Events {
		if ev.Kind != gridftp.EventEnd {
			continue
		}
		fmt.Printf("  DATE=%.0f HOST=%s NL.EVNT=%s DEST=%s BYTES=%d\n",
			ev.Time.Seconds(), ev.Transfer.Src, ev.Kind, ev.Transfer.Dst, ev.Transfer.Bytes)
		shown++
		if shown == 3 {
			break
		}
	}
	return nil
}
