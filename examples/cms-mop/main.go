// US-CMS MOP production (§4.2, §6.2): assignments are read from a control
// "database" and converted by MOP into DAGMan DAGs — a fan of GEANT
// simulation jobs feeding a collect step — submitted through
// Condor-G. Outputs archive through the storage element at the Fermilab
// Tier1. The run reports the §6.2 observations: ~70% completion with long
// OSCAR jobs, and failures arriving "in groups from site service
// failures" rather than as random losses.
package main

import (
	"fmt"
	"os"
	"time"

	"grid3/internal/apps"
	"grid3/internal/core"
	"grid3/internal/dagman"
	"grid3/internal/dist"
	"grid3/internal/failure"
	"grid3/internal/vo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cms-mop:", err)
		os.Exit(1)
	}
}

func run() error {
	g, err := core.New(core.Config{Seed: 2004})
	if err != nil {
		return err
	}
	rng := dist.New(7)

	// Inject the §6.2 failure environment: occasional whole-site service
	// failures and disk pressure.
	inj := failure.New(g.Eng, rng.Fork(), failure.Config{
		ServiceMTBF: 5 * 24 * time.Hour, ServiceDuration: 6 * time.Hour,
		DiskFullMTBF: 7 * 24 * time.Hour, DiskFullDuration: 8 * time.Hour,
		RandomLossPerDay: 0.05,
	}, g.Network)
	for _, name := range g.Order {
		n := g.Nodes[name]
		inj.Register(&failure.Target{Site: n.Site, Batch: n.Batch, Gatekeeper: n.Gatekeeper})
	}

	// The control database: a mix of CMSIM and OSCAR assignments.
	var db []apps.Assignment
	for i := 0; i < 12; i++ {
		kind := "cmsim"
		if i%2 == 1 {
			kind = "oscar"
		}
		db = append(db, apps.Assignment{
			ID: fmt.Sprintf("mop-%03d", i), Events: 6250, Kind: kind, EventsPerJob: 250,
		})
	}

	// MOP: each assignment becomes a DAGMan DAG; simulation nodes submit
	// through the grid (SubmitJobFunc ties DAG progress to end-to-end job
	// completion, including stage-out at FNAL).
	user := "/DC=org/DC=doegrids/OU=People/CN=uscms user 00"
	dagOK, dagFailed := 0, 0
	for _, a := range db {
		a := a
		d, err := a.BuildDAG(rng, user, func(j apps.MOPJob, done func(error)) {
			g.SubmitJobFunc(j.Request, done)
		})
		if err != nil {
			return err
		}
		runner := dagman.NewRunner(d)
		runner.MaxJobs = 40 // DAGMan -maxjobs per assignment
		if err := runner.Run(func(r dagman.Result) {
			if r.Succeeded() {
				dagOK++
			} else {
				dagFailed++
			}
		}); err != nil {
			return err
		}
	}

	// Run three virtual weeks of production.
	g.Eng.RunUntil(21 * 24 * time.Hour)

	st := g.Stats(vo.USCMS)
	fmt.Printf("MOP production: %d assignments → %d grid jobs submitted\n", len(db), st.Submitted)
	fmt.Printf("assignment DAGs: %d complete, %d with failed branches\n", dagOK, dagFailed)
	fmt.Printf("job outcomes: %d ok, %d exec failures, %d stage-out failures → attempt efficiency %.0f%% (paper §6.2: ~70%%)\n",
		st.Completed, st.ExecFailures, st.StageOutFailures, 100*st.Efficiency())

	// Where did it run, and how grouped were the failures?
	g.ACDC.Pull()
	bySite := map[string]int{}
	for _, r := range g.ACDC.Records() {
		if r.VO == vo.USCMS {
			bySite[r.Site]++
		}
	}
	fmt.Println("job records by site:")
	for _, name := range g.Order {
		if n := bySite[name]; n > 0 {
			fmt.Printf("  %-22s %d\n", name, n)
		}
	}
	fmt.Printf("FNAL Tier1 archive: %d datasets, %.1f TB on disk\n",
		g.Nodes["FNAL_CMS_Tier1"].LRC.Len(),
		float64(g.Nodes["FNAL_CMS_Tier1"].Site.Disk.Used())/float64(1<<40))
	fmt.Printf("failure incidents: %v\n", inj.CountByKind())
	return nil
}
