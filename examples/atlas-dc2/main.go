// ATLAS data challenge (§4.1): the full virtual-data path. Chimera plans a
// three-step pipeline (Pythia event generation → GEANT simulation →
// reconstruction) from the virtual data catalog; Pegasus maps it onto
// Grid3 using live MDS resource state and RLS replica locations, inserting
// stage-in/stage-out/register jobs; Condor-G/DAGMan executes it; outputs
// are archived at the BNL Tier1 and registered in RLS.
package main

import (
	"fmt"
	"os"
	"time"

	"grid3/internal/chimera"
	"grid3/internal/core"
	"grid3/internal/dagman"
	"grid3/internal/dial"
	"grid3/internal/pegasus"
	"grid3/internal/vo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "atlas-dc2:", err)
		os.Exit(1)
	}
}

func run() error {
	g, err := core.New(core.Config{Seed: 2003})
	if err != nil {
		return err
	}

	// Seed the external inputs at BNL and publish them in RLS.
	for _, in := range []struct {
		lfn   string
		bytes int64
	}{
		{"lfn:pythia-card", 1 << 20},
		{"lfn:geometry-db", 500 << 20},
		{"lfn:calib-db", 200 << 20},
	} {
		if err := g.SeedFile("BNL_ATLAS_Tier1", in.lfn, in.bytes); err != nil {
			return err
		}
	}

	// Chimera virtual data catalog: TRs with Grid3 resource profiles, and
	// DVs for four event batches.
	cat := chimera.NewCatalog()
	cat.AddTR(&chimera.Transformation{Name: "pythia", MeanRuntime: time.Hour, Walltime: 4 * time.Hour, StagingFactor: 1, OutputBytes: 100 << 20, RequiresApp: "atlas-gce-7.0.3"})
	cat.AddTR(&chimera.Transformation{Name: "atlsim", MeanRuntime: 8 * time.Hour, Walltime: 24 * time.Hour, StagingFactor: 2, OutputBytes: 2 << 30, RequiresApp: "atlas-gce-7.0.3"})
	cat.AddTR(&chimera.Transformation{Name: "atrecon", MeanRuntime: 4 * time.Hour, Walltime: 12 * time.Hour, StagingFactor: 2, OutputBytes: 500 << 20, RequiresApp: "atlas-gce-7.0.3"})
	var want []string
	for b := 1; b <= 4; b++ {
		id := fmt.Sprintf("%04d", b)
		cat.AddDV(&chimera.Derivation{ID: "gen-" + id, TR: "pythia",
			Inputs: []string{"lfn:pythia-card"}, Outputs: []string{"lfn:evgen." + id}})
		cat.AddDV(&chimera.Derivation{ID: "sim-" + id, TR: "atlsim",
			Inputs: []string{"lfn:evgen." + id, "lfn:geometry-db"}, Outputs: []string{"lfn:hits." + id}})
		cat.AddDV(&chimera.Derivation{ID: "reco-" + id, TR: "atrecon",
			Inputs: []string{"lfn:hits." + id, "lfn:calib-db"}, Outputs: []string{"lfn:esd." + id}})
		want = append(want, "lfn:esd."+id)
	}
	abstract, err := cat.Plan(want...)
	if err != nil {
		return err
	}
	fmt.Printf("Chimera planned %d derivations; external inputs: %v\n",
		len(abstract.Order), abstract.ExternalInputs())

	// Pegasus concrete planning against the live grid.
	planner := g.PlannerFor(vo.USATLAS, pegasus.VOAffinity)
	concrete, err := planner.Plan(abstract, vo.USATLAS)
	if err != nil {
		return err
	}
	fmt.Printf("Pegasus mapped %d concrete jobs (%d reused):", len(concrete.Order), len(concrete.Reused))
	for t, n := range concrete.CountByType() {
		fmt.Printf(" %s=%d", t, n)
	}
	fmt.Println()

	// Execute under DAGMan.
	var result dagman.Result
	wf, err := g.RunWorkflow(concrete, vo.USATLAS,
		"/DC=org/DC=doegrids/OU=People/CN=usatlas user 00",
		func(r dagman.Result) { result = r })
	if err != nil {
		return err
	}
	g.Eng.RunUntil(7 * 24 * time.Hour)
	fmt.Printf("DAG finished: %d done, %d failed, %d unrunnable\n",
		len(result.Done), len(result.Failed), len(result.Unrunnable))
	for _, id := range abstract.Order {
		if siteName, ok := wf.JobSites["compute_"+id]; ok {
			fmt.Printf("  %-12s ran at %s\n", id, siteName)
		}
	}

	// The products are in RLS, archived at BNL.
	for _, lfn := range want {
		sites := g.RLI.Sites(lfn)
		fmt.Printf("  %s replicated at %v\n", lfn, sites)
	}

	// §6.1: "A dataset catalog was created for produced samples, making
	// them available to the DIAL distributed analysis package. ... Output
	// datasets ... continue to be analyzed by DIAL developers and the
	// SUSY physics working group." Register the ESDs and run an analysis.
	for _, lfn := range want {
		g.DIAL.Append("dc2.esd", lfn, 500<<20)
	}
	task := &dial.Task{
		Name:        "susy-met-histo",
		FilesPerJob: 2,
		Process: func(lfn string, bytes int64) (*dial.Histogram, error) {
			// One pseudo-histogram entry per 100 MB of ESD.
			return &dial.Histogram{Bins: []float64{float64(bytes / (100 << 20))}}, nil
		},
	}
	var ares dial.Result
	if err := g.AnalyzeDataset(vo.USATLAS,
		"/DC=org/DC=doegrids/OU=People/CN=usatlas user 01",
		"dc2.esd", task, 20*time.Minute, func(r dial.Result) { ares = r }); err != nil {
		return err
	}
	g.Eng.RunFor(24 * time.Hour)
	fmt.Printf("DIAL analysis: %d sub-jobs (%d failed), histogram entries %.0f\n",
		ares.SubJobs, ares.Failed, ares.Histogram.Entries())

	// Virtual-data reuse: replanning the same request prunes everything.
	replan, err := g.PlannerFor(vo.USATLAS, pegasus.VOAffinity).Plan(abstract, vo.USATLAS)
	if err != nil {
		return err
	}
	fmt.Printf("replanning the same request: %d jobs to run, %d derivations reused from RLS\n",
		len(replan.Order), len(replan.Reused))
	return nil
}
