// Quickstart: assemble the full Grid3 stack through the public
// functional-options façade, submit a handful of jobs, and read the
// results back through the monitoring chain.
package main

import (
	"fmt"
	"os"
	"time"

	"grid3"
	"grid3/internal/vo"
)

func main() {
	// A complete Grid3: 27 sites, VOMS, MDS, GRAM, GridFTP, RLS,
	// Condor-G, Ganglia/MonALISA/ACDC monitoring — one call. Options
	// tune the assembly; the zero-option call reproduces the paper.
	g, err := grid3.New(grid3.WithSeed(42), grid3.WithMonitorInterval(5*time.Minute))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("grid up: %d sites, %d VOs, %d authorized users\n",
		len(g.Order), len(g.Schedds), g.Registry.TotalUsers())

	// Submit ten US-ATLAS simulation jobs. Each stages 100 MB in, runs
	// for a few hours, archives 2 GB at Brookhaven, and registers the
	// output in RLS.
	for i := 0; i < 10; i++ {
		g.SubmitJob(grid3.Request{
			ID:            fmt.Sprintf("quickstart-%02d", i),
			VO:            vo.USATLAS,
			User:          "/DC=org/DC=doegrids/OU=People/CN=usatlas user 00",
			Runtime:       time.Duration(2+i) * time.Hour,
			Walltime:      time.Duration(2+i)*time.Hour + 2*time.Hour,
			StagingFactor: 2,
			InputBytes:    100 << 20,
			OutputBytes:   2 << 30,
		})
	}

	// Advance virtual time one day and look at what happened.
	g.Eng.RunUntil(24 * time.Hour)

	st := g.Stats(vo.USATLAS)
	fmt.Printf("after one virtual day: %d submitted, %d completed end-to-end, %d failures\n",
		st.Submitted, st.Completed, st.ExecFailures+st.StageOutFailures)

	// The archive's replica catalog saw every output.
	bnl := g.Nodes["BNL_ATLAS_Tier1"]
	fmt.Printf("BNL storage: %d files, %.1f GB used; LRC has %d logical files\n",
		bnl.Site.Disk.FileCount(), float64(bnl.Site.Disk.Used())/(1<<30), bnl.LRC.Len())

	// The monitoring chain observed it all: MDS publishes live CE state,
	// MonALISA accumulated per-site series, the site catalog probes pass.
	g.ACDC.Pull()
	fmt.Printf("ACDC job monitor collected %d records\n", g.ACDC.Len())
	entries := g.TopGIIS.Entries()
	fmt.Printf("iGOC MDS index serves %d site entries\n", len(entries))
	fmt.Printf("site status catalog: %d/%d sites passing\n",
		g.Catalog.Passing(), len(g.Catalog.Sites()))
}
