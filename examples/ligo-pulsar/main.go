// LIGO blind pulsar search (§4.4): an all-sky continuous-wave search over
// the S2 data set. Each workflow instance stages a ~4 GB short-Fourier-
// transform band file (published in RLS so jobs can find it), plus the
// year's ephemeris data, runs a several-hour search, and stages results
// back to the LIGO facility, updating RLS. The staging-heavy profile is
// what gives LIGO its ×4 gatekeeper staging factor.
package main

import (
	"fmt"
	"os"
	"time"

	"grid3/internal/chimera"
	"grid3/internal/core"
	"grid3/internal/dagman"
	"grid3/internal/pegasus"
	"grid3/internal/vo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ligo-pulsar:", err)
		os.Exit(1)
	}
}

func run() error {
	g, err := core.New(core.Config{Seed: 1915})
	if err != nil {
		return err
	}

	// Stage the S2 band files and ephemeris from the LIGO facility
	// (modeled at the UWM LSC site) and publish locations in RLS.
	const bands = 6
	for b := 0; b < bands; b++ {
		lfn := fmt.Sprintf("lfn:ligo/s2/sft-band-%02d", b)
		if err := g.SeedFile("UWMilwaukee_LSC", lfn, 4<<30); err != nil {
			return err
		}
	}
	if err := g.SeedFile("UWMilwaukee_LSC", "lfn:ligo/ephemeris-2003", 50<<20); err != nil {
		return err
	}

	// The GriPhyN-LIGO working group's Chimera workflow: one search per
	// band, then a collector that stages results back.
	cat := chimera.NewCatalog()
	cat.AddTR(&chimera.Transformation{
		Name: "cw-search", MeanRuntime: 5 * time.Hour, Walltime: 24 * time.Hour,
		StagingFactor: 4, OutputBytes: 20 << 20, RequiresApp: "ligo-pulsar-2.1",
	})
	cat.AddTR(&chimera.Transformation{
		Name: "collect", MeanRuntime: 30 * time.Minute, Walltime: 4 * time.Hour,
		StagingFactor: 2, OutputBytes: 100 << 20, RequiresApp: "ligo-pulsar-2.1",
	})
	var candidates []string
	for b := 0; b < bands; b++ {
		lfn := fmt.Sprintf("lfn:ligo/s2/sft-band-%02d", b)
		out := fmt.Sprintf("lfn:ligo/s2/candidates-%02d", b)
		cat.AddDV(&chimera.Derivation{
			ID: fmt.Sprintf("search-%02d", b), TR: "cw-search",
			Inputs:  []string{lfn, "lfn:ligo/ephemeris-2003"},
			Outputs: []string{out},
		})
		candidates = append(candidates, out)
	}
	cat.AddDV(&chimera.Derivation{
		ID: "collect-all", TR: "collect",
		Inputs:  candidates,
		Outputs: []string{"lfn:ligo/s2/allsky-summary"},
	})

	abstract, err := cat.Plan("lfn:ligo/s2/allsky-summary")
	if err != nil {
		return err
	}
	// LoadBalanced placement sends searches to the emptiest eligible
	// sites, so the SFT band files must stage in over GridFTP — the
	// paper's "staged from LIGO facilities to Grid3 sites" path.
	planner := g.PlannerFor(vo.LIGO, pegasus.LoadBalanced)
	concrete, err := planner.Plan(abstract, vo.LIGO)
	if err != nil {
		return err
	}
	counts := concrete.CountByType()
	fmt.Printf("planned %d jobs: %d searches + collector, %d stage-ins, %d stage-outs\n",
		len(concrete.Order), counts[pegasus.Compute]-1, counts[pegasus.StageIn], counts[pegasus.StageOut])

	var result dagman.Result
	wf, err := g.RunWorkflow(concrete, vo.LIGO,
		"/DC=org/DC=doegrids/OU=People/CN=ligo user 00",
		func(r dagman.Result) { result = r })
	if err != nil {
		return err
	}
	g.Eng.RunUntil(4 * 24 * time.Hour)
	fmt.Printf("workflow: %d done, %d failed\n", len(result.Done), len(result.Failed))
	for b := 0; b < bands; b++ {
		name := fmt.Sprintf("compute_search-%02d", b)
		fmt.Printf("  band %02d searched at %s\n", b, wf.JobSites[name])
	}
	fmt.Printf("summary replicated at %v\n", g.RLI.Sites("lfn:ligo/s2/allsky-summary"))

	// The staged data is heavy: report the transfer volume.
	var staged int64
	for _, h := range g.Network.History() {
		staged += h.Bytes
	}
	fmt.Printf("data moved over GridFTP: %.1f GB across %d transfers\n",
		float64(staged)/float64(1<<30), len(g.Network.History()))
	return nil
}
