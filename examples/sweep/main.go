// Multi-seed campaign sweep: run the calibrated Grid3 production scenario
// across several seeds in parallel — one discrete-event engine per CPU —
// and report Table 1 / §7 milestone quantities as min/mean/max across
// seeds. This is how the reproduction puts error bars on the paper's
// numbers: each seed is an independent 183-day virtual campaign, and
// parallel placement cannot perturb any seed's result (each engine is
// private, so per-seed output is bit-identical to a serial run).
//
// The default 30-day horizon at 5% scale keeps the example quick; pass
// -days 183 -scale 1.0 for full paper-scale campaigns.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"grid3"
)

func main() {
	n := flag.Int("n", 4, "number of seeds to sweep (seeds 1..n)")
	scale := flag.Float64("scale", 0.05, "workload scale factor")
	days := flag.Int("days", 30, "scenario length in days")
	flag.Parse()

	seeds := make([]int64, *n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	rep, err := grid3.Sweep(seeds, *scale,
		grid3.WithHorizon(time.Duration(*days)*24*time.Hour))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	rep.Write(os.Stdout)
	fmt.Println()

	// Per-seed exhibits stay retrievable — here, the first seed's Table 1.
	if table, ok := rep.Table1Text(seeds[0]); ok {
		fmt.Printf("seed %d exhibits:\n%s", seeds[0], table)
	}
}
