// SC2003 (§6): replay the 30-day demonstration window that began the
// sustained Grid3 operations — October 25 through November 24, 2003 — and
// print the integrated/differential usage and transfer volumes that
// Figures 2, 3 and 5 report for that window.
package main

import (
	"fmt"
	"os"
	"time"

	"grid3/internal/core"
	"grid3/internal/mdviewer"
)

func main() {
	// A 40-day horizon covers the SC2003 window plus drain-out. Scale 0.25
	// keeps this example quick; run cmd/grid3sim for the full campaign.
	s, err := core.NewScenario(core.ScenarioConfig{
		Config:   core.Config{Seed: 2003},
		Horizon:  40 * 24 * time.Hour,
		JobScale: 0.25,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sc2003:", err)
		os.Exit(1)
	}
	start := time.Now()
	s.Run()
	fmt.Printf("replayed 40 virtual days in %v: %d jobs, %d ACDC records\n\n",
		time.Since(start).Round(time.Millisecond), s.SubmittedTotal(), s.Grid.ACDC.Len())

	w := os.Stdout
	mdviewer.BarChart(w, "Integrated CPU usage during SC2003 (Figure 2)", "CPU-days", s.Figure2(), 40)
	fmt.Fprintln(w)

	byVO, total := s.Figure5()
	mdviewer.BarChart(w, fmt.Sprintf("Data consumed during the window (Figure 5, total %.1f TB)", total), "TB", byVO, 40)
	fmt.Fprintln(w)

	// Peak concurrency during the demonstration (the 1300-job milestone
	// was hit on Nov 20, 2003).
	fmt.Printf("peak concurrent grid jobs during the window: %d (paper: 1300 on 11/20/03)\n",
		s.Grid.PeakRunning())

	// The §6.1 failure attribution.
	if s.Injector != nil {
		fmt.Printf("site-problem share of killed jobs: %.0f%% (paper: ~90%%)\n",
			100*s.Injector.SiteProblemFraction())
	}
}
