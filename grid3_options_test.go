package grid3

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"
)

// TestOptionMatrix walks every exported With* option and asserts it lands on
// the ScenarioConfig field it documents — the contract the grid3d config
// loader and the README table both lean on. A new option without a row here
// is a review smell, not a compile error, so keep the matrix exhaustive.
func TestOptionMatrix(t *testing.T) {
	sites := make([]SiteSpec, 3) // replacing the catalog is a length check here
	matrix := []struct {
		name  string
		opt   Option
		check func(ScenarioConfig) bool
	}{
		{"WithSeed", WithSeed(99), func(c ScenarioConfig) bool { return c.Config.Seed == 99 }},
		{"WithSites", WithSites(sites), func(c ScenarioConfig) bool {
			return len(c.Config.Sites) == 3
		}},
		{"WithTestbedScale", WithTestbedScale(300), func(c ScenarioConfig) bool { return c.Config.TestbedSites == 300 }},
		{"WithMonitorInterval", WithMonitorInterval(time.Minute), func(c ScenarioConfig) bool {
			return c.Config.MonitorInterval == time.Minute
		}},
		{"WithNegotiationInterval", WithNegotiationInterval(2 * time.Minute), func(c ScenarioConfig) bool {
			return c.Config.NegotiationInterval == 2*time.Minute
		}},
		{"WithSRM", WithSRM(), func(c ScenarioConfig) bool { return c.Config.UseSRM }},
		{"WithoutAffinity", WithoutAffinity(), func(c ScenarioConfig) bool { return c.Config.DisableAffinity }},
		{"WithConfig", WithConfig(Config{Seed: 5}), func(c ScenarioConfig) bool { return c.Config.Seed == 5 }},
		{"WithHorizon", WithHorizon(48 * time.Hour), func(c ScenarioConfig) bool { return c.Horizon == 48*time.Hour }},
		{"WithJobScale", WithJobScale(0.25), func(c ScenarioConfig) bool { return c.JobScale == 0.25 }},
		{"WithoutFailures", WithoutFailures(), func(c ScenarioConfig) bool { return c.DisableFailures }},
		{"WithoutTransferDemo", WithoutTransferDemo(), func(c ScenarioConfig) bool { return c.DisableTransferDemo }},
		{"WithObservability", WithObservability(), func(c ScenarioConfig) bool { return c.Config.EnableObservability }},
		{"WithTracer", WithTracer(JSONLSink(io.Discard)), func(c ScenarioConfig) bool {
			return c.Config.EnableObservability && len(c.TraceSinks) == 1
		}},
		{"WithMetricsSink", WithMetricsSink(TextMetricsSink(io.Discard)), func(c ScenarioConfig) bool {
			return c.Config.EnableObservability && len(c.MetricsSinks) == 1
		}},
		{"WithoutObservability", WithoutObservability(), func(c ScenarioConfig) bool {
			return !c.Config.EnableObservability && c.TraceSinks == nil && c.MetricsSinks == nil
		}},
		{"WithIngestBatching", WithIngestBatching(256, 10*time.Minute), func(c ScenarioConfig) bool {
			return c.Config.IngestBatch == 256 && c.Config.IngestWindow == 10*time.Minute
		}},
		{"WithHealthProbes", WithHealthProbes(), func(c ScenarioConfig) bool { return c.Config.EnableHealth }},
		{"WithRecovery", WithRecovery(), func(c ScenarioConfig) bool { return c.Config.EnableRecovery }},
		{"WithChaos", WithChaos(2.5), func(c ScenarioConfig) bool { return c.ChaosIntensity == 2.5 }},
		{"WithUpgradeWave", WithUpgradeWave(UpgradeWaveConfig{Start: 72 * time.Hour}), func(c ScenarioConfig) bool {
			return c.UpgradeWave.Enabled() && c.UpgradeWave.Start == 72*time.Hour
		}},
		{"WithCertWave", WithCertWave(CertWaveConfig{Lifetime: 48 * time.Hour}), func(c ScenarioConfig) bool {
			return c.CertWave.Enabled() && c.CertWave.Lifetime == 48*time.Hour
		}},
		{"WithTransferDoors", WithTransferDoors(8), func(c ScenarioConfig) bool { return c.Config.TransferDoors == 8 }},
		{"WithReplicaRanking", WithReplicaRanking(), func(c ScenarioConfig) bool { return c.Config.EnableReplicaRanking }},
		{"WithStorageCleanup", WithStorageCleanup(0.3), func(c ScenarioConfig) bool {
			return c.Config.EnableStorageCleanup && c.Config.CleanupWatermark == 0.3
		}},
		{"WithRealTime", WithRealTime(7200), func(c ScenarioConfig) bool { return c.RealTimePace == 7200 }},
		{"WithCheckpointAt", WithCheckpointAt(NewMemStore(), 12*time.Hour, 36*time.Hour), func(c ScenarioConfig) bool {
			return c.CheckpointStore != nil && len(c.CheckpointAt) == 2 && c.CheckpointAt[1] == 36*time.Hour
		}},
		{"WithScenarioConfig", WithScenarioConfig(ScenarioConfig{JobScale: 0.7}), func(c ScenarioConfig) bool {
			return c.JobScale == 0.7
		}},
	}
	for _, row := range matrix {
		if cfg := buildConfig([]Option{row.opt}); !row.check(cfg) {
			t.Errorf("%s did not reach its ScenarioConfig field: %+v", row.name, cfg)
		}
	}

	// Conflicting options resolve last-wins, uniformly.
	if cfg := buildConfig([]Option{WithJobScale(0.5), WithJobScale(0.1)}); cfg.JobScale != 0.1 {
		t.Fatalf("last WithJobScale lost: %v", cfg.JobScale)
	}
	if cfg := buildConfig([]Option{WithRealTime(10), WithRealTime(-3)}); cfg.RealTimePace != 0 {
		t.Fatalf("negative WithRealTime should clamp to the default, got %v", cfg.RealTimePace)
	}
}

// TestRealTimeIgnoredByBatch pins the documented split: WithRealTime only
// paces Serve. A batch run carrying a crawling pace (1 sim-second per wall
// second over a 24h horizon) must still finish as fast as the hardware
// allows — if the batch path ever consulted the governor this test would
// run for a day.
func TestRealTimeIgnoredByBatch(t *testing.T) {
	start := time.Now()
	r, err := RunScenario(4, 0.001,
		WithTestbedScale(5),
		WithHorizon(24*time.Hour),
		WithRealTime(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if r.EventsProcessed() == 0 {
		t.Fatal("batch run processed no events")
	}
	if elapsed := time.Since(start); elapsed > time.Minute {
		t.Fatalf("batch run appears to be wall-paced: took %v", elapsed)
	}
}

// TestCheckpointFacadeRoundTrip drives the whole public checkpoint surface:
// WithCheckpointAt captures mid-run, Encode/Decode round-trips the wire
// format, Restore continues to the same end digest as the straight run, and
// ServeFrom warm-boots a daemon from the batch snapshot.
func TestCheckpointFacadeRoundTrip(t *testing.T) {
	store := NewMemStore()
	opts := []Option{
		WithTestbedScale(5),
		WithHorizon(48 * time.Hour),
		WithJobScale(0.002),
	}
	s, err := NewScenario(append(opts, WithCheckpointAt(store, 24*time.Hour))...)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.CheckpointIDs) != 1 {
		t.Fatalf("checkpoint IDs %v, want one", s.CheckpointIDs)
	}
	want := s.StateDigest(nil)

	snap, _, err := LatestSnapshot(store)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(EncodeSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(decoded, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Run(); err != nil {
		t.Fatal(err)
	}
	if got := restored.StateDigest(nil); got != want {
		t.Fatalf("restored run diverged: %016x vs %016x", got, want)
	}

	// Corruption never loads: flip one payload byte and the decode or the
	// digest check must refuse.
	raw := EncodeSnapshot(snap)
	raw[len(raw)-8] ^= 0x40
	if bad, err := DecodeSnapshot(raw); err == nil {
		if _, rerr := Restore(bad, opts...); rerr == nil {
			t.Fatal("tampered snapshot restored cleanly")
		}
	}

	// Warm-boot a daemon from the batch snapshot (job table starts empty).
	srv, err := ServeFrom(snap, WithRealTime(3600))
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	st, err := srv.StatusNow()
	srv.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if st.SimNow < 24*time.Hour {
		t.Fatalf("daemon booted at sim %v, want >= 24h", st.SimNow)
	}
}

// TestRunSweepMatchesSweep pins the wrapper contract: the legacy positional
// Sweep is sugar over RunSweep with the same SweepConfig, so both produce
// identical seeds and aggregates.
func TestRunSweepMatchesSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	opts := []Option{WithHorizon(4 * 24 * time.Hour), WithTestbedScale(10)}
	legacy, err := Sweep([]int64{21, 22}, 0.005, opts...)
	if err != nil {
		t.Fatal(err)
	}
	unified, err := RunSweep(SweepConfig{Seeds: []int64{21, 22}, Scale: 0.005}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := legacy.Seeds(), unified.Seeds(); len(a) != len(b) || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("seeds diverged: %v vs %v", a, b)
	}
	la, ua := legacy.Aggregate(), unified.Aggregate()
	if la.JobsCompleted != ua.JobsCompleted || la.Utilization != ua.Utilization {
		t.Fatalf("aggregates diverged:\nlegacy  %+v\nunified %+v", la, ua)
	}
}

// TestReportJSONSchemas checks the unified Report surface: every campaign
// report satisfies the interface (also pinned at compile time in grid3.go)
// and its JSON rendering carries the versioned schema plus the frozen kind
// string that downstream tooling greps for.
func TestReportJSONSchemas(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	rep, err := Sweep([]int64{31}, 0.005, WithHorizon(4*24*time.Hour), WithTestbedScale(10))
	if err != nil {
		t.Fatal(err)
	}
	var r Report = rep
	var buf strings.Builder
	r.Write(&buf)
	if buf.Len() == 0 {
		t.Fatal("Report.Write produced nothing")
	}
	raw, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(raw), "\n") {
		t.Fatal("Report.JSON output is not newline-terminated")
	}
	var head struct {
		Schema string `json:"schema"`
		Kind   string `json:"kind"`
	}
	if err := json.Unmarshal(raw, &head); err != nil {
		t.Fatal(err)
	}
	if head.Schema != "grid3.sweep/1" || head.Kind != "grid3-sweep" {
		t.Fatalf("sweep report header = %+v", head)
	}
}
