// Command pacman resolves and "installs" packages from the iGOC Grid3
// cache, printing the dependency-ordered plan — the §5.1 site installation
// path (`pacman -get Grid3`).
//
// Usage:
//
//	pacman [-get grid3] [-list]
package main

import (
	"flag"
	"fmt"
	"os"

	"grid3/internal/pacman"
	"grid3/internal/vdt"
)

func main() {
	get := flag.String("get", "grid3", "package to resolve and install")
	list := flag.Bool("list", false, "list the iGOC cache contents")
	flag.Parse()

	cache := vdt.Grid3Cache()
	if *list {
		fmt.Println("iGOC cache packages:")
		for _, name := range cache.Packages() {
			p, _ := cache.Lookup(name)
			fmt.Printf("  %-16s %-10s deps=%v\n", p.Name, p.Version, p.Depends)
		}
		return
	}

	order, err := pacman.Resolve(cache, *get)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pacman:", err)
		os.Exit(1)
	}
	fmt.Printf("resolution for %q (%d packages, dependencies first):\n", *get, len(order))
	target := pacman.NewMemTarget()
	installed, err := pacman.Install(cache, target, *get)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pacman:", err)
		os.Exit(1)
	}
	for _, p := range installed {
		fmt.Printf("  installed %-24s", p.ID())
		if len(p.Paths) > 0 {
			fmt.Printf(" -> %v", p.Paths)
		}
		fmt.Println()
	}
}
