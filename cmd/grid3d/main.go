// Command grid3d runs the Grid3 scenario as a long-running service: the
// simulation advances continuously in scaled real time (default: one
// simulated hour per wall second) and the paper's user-facing surfaces are
// exposed as HTTP/JSON APIs on -addr.
//
//	grid3d [-addr :8080] [-pace 3600] [-seed N] [-sites N] [-scale F] [-days D]
//	       [-srm] [-health] [-recovery] [-doors N] [-cleanup] [-replica-rank]
//	       [-shards N] [-config grid3d.json] [-json-out status.json]
//	       [-checkpoint-dir DIR] [-checkpoint-every 6h] [-checkpoint-keep 3]
//
// Endpoints (all JSON; see the README endpoint table):
//
//	GET  /healthz                      liveness (never blocks on the sim loop)
//	GET  /api/v1/status                clocks, pace, lag, counters
//	GET  /api/v1/vo                    VOs and member counts
//	GET  /api/v1/vo/{vo}/members       VOMS membership list
//	POST /api/v1/vo/{vo}/members       enroll a member (VOMS)
//	POST /api/v1/jobs                  submit a job (Condor-G)
//	GET  /api/v1/jobs[/{id}]           job counters / one job's state
//	GET  /api/v1/rls/{lfn}             replica lookup (RLS)
//	GET  /api/v1/monitor/metrics       engine + observability counters
//	GET  /api/v1/monitor/monalisa      MonALISA series and last samples
//	GET  /api/v1/monitor/acdc          ACDC job-archive summaries
//	GET  /api/v1/sites                 site catalog with live status
//	GET  /api/v1/goc/tickets[/{id}]    iGOC trouble tickets
//	POST /api/v1/config/reload         re-read -config, apply dynamic fields
//
// The -config file is JSON; only the dynamic subset ({"pace": N,
// "max_pending": N}) applies at runtime — POST /api/v1/config/reload or
// SIGHUP re-reads it, applies what it can, and reports every static field
// it had to skip. -days 0 keeps the default 183-day paper window; after
// the horizon the daemon stops generating load but keeps answering
// queries. -json-out writes a final status record ("grid3.serve-status/1")
// on clean shutdown, following the grid3sim -json-out convention.
//
// SIGINT/SIGTERM shut down gracefully: in-flight requests finish, the
// mailbox drains, and the scenario runs its end-of-run bookkeeping.
//
// -checkpoint-dir makes the daemon crash-recoverable: on boot it restores
// the newest decodable snapshot in the directory (logging the snapshot ID
// and sim time, or the rejection reason followed by a cold start), every
// -checkpoint-every of simulated time it captures a fresh snapshot
// (atomically committed, pruned to -checkpoint-keep), and on SIGINT/SIGTERM
// it writes a final snapshot before stopping. A snapshot records the
// resolved configuration plus the journal of API mutations; restore replays
// it deterministically and verifies a state digest, so a restored daemon
// continues byte-identically — and a kill -9 loses at most one
// -checkpoint-every window.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"grid3/internal/checkpoint"
	"grid3/internal/core"
	"grid3/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	pace := flag.Float64("pace", 0, "virtual seconds per wall second (0 = the serve default, 3600)")
	seed := flag.Int64("seed", 1, "simulation seed (same seed, same run)")
	sites := flag.Int("sites", 0, "testbed size: 0 = the historical 27-site catalog, larger adds synthetic sites")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper's ~290k jobs)")
	days := flag.Int("days", 0, "simulated horizon in days (0 = the 183-day paper window)")
	useSRM := flag.Bool("srm", false, "enable SRM space reservation (the §8 lesson)")
	healthOn := flag.Bool("health", false, "arm site health probing with circuit breakers (read-only)")
	recoveryOn := flag.Bool("recovery", false, "close the fault-management loop (implies -health)")
	doors := flag.Int("doors", 0, "bound concurrent GridFTP flows per endpoint (0 = historical unbounded WAN)")
	cleanupOn := flag.Bool("cleanup", false, "arm the SRM lifecycle loop (expiry, pins, watermark eviction)")
	replicaRank := flag.Bool("replica-rank", false, "rank Pegasus stage-in replicas by live WAN load")
	shards := flag.Int("shards", 0, "partition the testbed into N regions and evaluate them on a worker each (output is identical at every N)")
	ingestBatch := flag.Int("ingest-batch", 0, "batch the monitoring path at N events per commit and arm the Merkle usage ledger (/api/v1/audit/*); 0 = per-event")
	ingestWindow := flag.Duration("ingest-window", 0, "batching/audit window (0 = the monitor interval; needs -ingest-batch)")
	maxPending := flag.Int("max-pending", 0, "ingress mailbox depth before shedding (0 = the serve default, 4096)")
	configPath := flag.String("config", "", "JSON config file; SIGHUP or POST /api/v1/config/reload re-applies the dynamic fields")
	jsonOut := flag.String("json-out", "", "write the final status record JSON to this file on shutdown")
	ckptDir := flag.String("checkpoint-dir", "", "durable snapshot directory: restore the newest snapshot on boot, auto-snapshot while running, final snapshot on shutdown")
	ckptEvery := flag.Duration("checkpoint-every", 6*time.Hour, "simulated time between automatic snapshots (with -checkpoint-dir)")
	ckptKeep := flag.Int("checkpoint-keep", 3, "snapshots retained in -checkpoint-dir; older ones are pruned")
	flag.Parse()

	cfg := serve.Config{
		Scenario: core.ScenarioConfig{
			Config: core.Config{
				Seed:                 *seed,
				TestbedSites:         *sites,
				UseSRM:               *useSRM,
				EnableHealth:         *healthOn,
				EnableRecovery:       *recoveryOn,
				TransferDoors:        *doors,
				EnableStorageCleanup: *cleanupOn,
				EnableReplicaRanking: *replicaRank,
				Shards:               *shards,
				IngestBatch:          *ingestBatch,
				IngestWindow:         *ingestWindow,
			},
			JobScale: *scale,
		},
		Pace:       *pace,
		MaxPending: *maxPending,
	}
	if *days > 0 {
		cfg.Scenario.Horizon = time.Duration(*days) * 24 * time.Hour
	}

	// The config file is optional and layered over the flags: the startup
	// read applies everything, later reloads apply only the dynamic subset.
	if *configPath != "" {
		fc, err := readConfig(*configPath)
		if err != nil {
			fatal(err)
		}
		if fc.Pace != nil {
			cfg.Pace = *fc.Pace
		}
		if fc.MaxPending != nil {
			cfg.MaxPending = *fc.MaxPending
		}
		if fc.Seed != nil {
			cfg.Scenario.Seed = *fc.Seed
		}
		if fc.Sites != nil {
			cfg.Scenario.TestbedSites = *fc.Sites
		}
		if fc.Scale != nil {
			cfg.Scenario.JobScale = *fc.Scale
		}
		if fc.Days != nil && *fc.Days > 0 {
			cfg.Scenario.Horizon = time.Duration(*fc.Days) * 24 * time.Hour
		}
	}

	// Durable checkpointing: restore the newest snapshot if one exists. A
	// snapshot that fails to restore (digest mismatch, schema skew) is
	// reported and skipped — the daemon cold-starts rather than dying or
	// loading partial state.
	var store checkpoint.StateStore
	if *ckptDir != "" {
		ds, err := checkpoint.NewDirStore(*ckptDir)
		if err != nil {
			fatal(err)
		}
		store = ds
		snap, id, err := checkpoint.Latest(ds)
		switch {
		case errors.Is(err, checkpoint.ErrNotFound):
			fmt.Printf("grid3d: %v; cold start\n", err)
		case err != nil:
			fatal(err)
		default:
			cfg.Restore = snap
			cfg.RestoreOverrides = core.RestoreOverrides{
				Shards:  *shards,
				Horizon: cfg.Scenario.Horizon,
			}
			fmt.Printf("grid3d: restoring snapshot %s (sim %v, %d journal ops)\n",
				id, snap.SimTime, len(snap.Journal))
		}
	}

	svc, err := serve.New(cfg)
	if err != nil && cfg.Restore != nil {
		fmt.Fprintf(os.Stderr, "grid3d: restore rejected: %v; cold start\n", err)
		cfg.Restore = nil
		svc, err = serve.New(cfg)
	}
	if err != nil {
		fatal(err)
	}
	if cfg.Restore != nil {
		fmt.Printf("grid3d: restored at sim %v\n", svc.Scenario().Grid.Eng.Now())
	}

	// saveSnapshot captures and durably commits one snapshot; periodic and
	// shutdown captures share it. The mutex keeps a shutdown snapshot from
	// interleaving with a periodic one.
	var snapMu sync.Mutex
	saveSnapshot := func(reason string) {
		snapMu.Lock()
		defer snapMu.Unlock()
		snap, err := svc.Snapshot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "grid3d: %s snapshot skipped: %v\n", reason, err)
			return
		}
		id, err := checkpoint.Save(store, snap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grid3d: %s snapshot: %v\n", reason, err)
			return
		}
		if err := checkpoint.Prune(store, *ckptKeep); err != nil {
			fmt.Fprintf(os.Stderr, "grid3d: pruning snapshots: %v\n", err)
		}
		fmt.Printf("grid3d: %s snapshot %s at sim %v\n", reason, id, snap.SimTime)
	}

	var reload func() (map[string]any, error)
	if *configPath != "" {
		reload = reloader(svc, *configPath)
	}
	handler := serve.NewHandler(svc, serve.HandlerConfig{Reload: reload})

	svc.Start()

	// Periodic auto-snapshot: poll the sim clock at wall cadence and capture
	// once -checkpoint-every of simulated time has elapsed since the last
	// one. Capture runs on the sim goroutine as a pure read, so the run
	// stays byte-identical to one that never checkpoints.
	ckptStop := make(chan struct{})
	if store != nil && *ckptEvery > 0 {
		lastSnap := svc.Scenario().Grid.Eng.Now()
		go func() {
			ticker := time.NewTicker(time.Second)
			defer ticker.Stop()
			for {
				select {
				case <-ckptStop:
					return
				case <-ticker.C:
					st, err := svc.StatusNow()
					if err != nil || st.Finished {
						continue
					}
					if st.SimNow-lastSnap >= *ckptEvery {
						saveSnapshot("periodic")
						lastSnap = st.SimNow
					}
				}
			}
		}()
	}

	server := &http.Server{Addr: *addr, Handler: handler}
	httpErr := make(chan error, 1)
	go func() { httpErr <- server.ListenAndServe() }()
	fmt.Printf("grid3d: serving on %s (seed %d, %d-site testbed flag, pace %.0fx)\n",
		*addr, cfg.Scenario.Seed, cfg.Scenario.TestbedSites, svc.Pace())

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	for {
		select {
		case <-hup:
			if reload == nil {
				fmt.Fprintln(os.Stderr, "grid3d: SIGHUP ignored (no -config file)")
				continue
			}
			applied, err := reload()
			if err != nil {
				fmt.Fprintln(os.Stderr, "grid3d: reload:", err)
				continue
			}
			fmt.Printf("grid3d: config reloaded: %v\n", applied)
		case err := <-httpErr:
			svc.Stop()
			fatal(err)
		case sig := <-stop:
			fmt.Printf("grid3d: %v, shutting down\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := server.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "grid3d: http shutdown:", err)
			}
			cancel()
			close(ckptStop)
			if store != nil {
				// Final snapshot before the sim loop finishes: a restarted
				// daemon resumes from the instant of shutdown, not the last
				// periodic capture.
				saveSnapshot("final")
			}
			st, stErr := svc.StatusNow()
			svc.Stop()
			if stErr != nil {
				// The snapshot raced shutdown; report what the atomics know.
				fmt.Printf("grid3d: stopped\n")
				return
			}
			fmt.Printf("grid3d: stopped at sim %v — %d events, %d requests accepted, %d shed\n",
				st.SimNow.Round(time.Second), st.Events, st.Accepted, st.Shed)
			if *jsonOut != "" {
				if err := writeStatusJSON(*jsonOut, st); err != nil {
					fmt.Fprintln(os.Stderr, "grid3d: writing status JSON:", err)
				}
			}
			return
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "grid3d:", err)
	os.Exit(1)
}

// fileConfig is the -config schema. Pointer fields distinguish "absent"
// from zero values; only Pace and MaxPending are dynamic — the rest shape
// the scenario at construction and need a restart to change.
type fileConfig struct {
	Pace       *float64 `json:"pace,omitempty"`
	MaxPending *int     `json:"max_pending,omitempty"`
	Seed       *int64   `json:"seed,omitempty"`
	Sites      *int     `json:"sites,omitempty"`
	Scale      *float64 `json:"scale,omitempty"`
	Days       *int     `json:"days,omitempty"`
}

func readConfig(path string) (fileConfig, error) {
	var fc fileConfig
	data, err := os.ReadFile(path)
	if err != nil {
		return fc, err
	}
	if err := json.Unmarshal(data, &fc); err != nil {
		return fc, fmt.Errorf("parsing %s: %w", path, err)
	}
	return fc, nil
}

// reloader builds the hot-reload hook shared by SIGHUP and the HTTP
// endpoint: re-read the file, apply the dynamic subset, report every static
// field that was present but needs a restart. Serialized so a SIGHUP racing
// a POST cannot interleave half-applied configs.
func reloader(svc *serve.Service, path string) func() (map[string]any, error) {
	var mu sync.Mutex
	return func() (map[string]any, error) {
		mu.Lock()
		defer mu.Unlock()
		fc, err := readConfig(path)
		if err != nil {
			return nil, err
		}
		applied := map[string]any{}
		var skipped []string
		if fc.Pace != nil {
			if err := svc.SetPace(*fc.Pace); err != nil {
				return nil, err
			}
			applied["pace"] = *fc.Pace
		}
		for _, f := range []struct {
			key string
			set bool
		}{
			{"max_pending", fc.MaxPending != nil},
			{"seed", fc.Seed != nil},
			{"sites", fc.Sites != nil},
			{"scale", fc.Scale != nil},
			{"days", fc.Days != nil},
		} {
			if f.set {
				skipped = append(skipped, f.key)
			}
		}
		if len(skipped) > 0 {
			applied["skipped_restart_required"] = skipped
		}
		return applied, nil
	}
}

// writeStatusJSON writes the serve layer's versioned status record
// (serve.StatusSchema) — the -json-out convention shared with grid3sim.
func writeStatusJSON(path string, st serve.Status) error {
	data, err := serve.StatusJSON(st)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
