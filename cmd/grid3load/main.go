// Command grid3load drives a running grid3d with an open-loop workload:
// arrivals follow a Poisson process whose rate is shaped by a diurnal cycle
// and an optional flash crowd, never waiting on responses — exactly the
// traffic a production portal sees, where users do not slow down because
// the service did. The endpoint mix models the paper's user populations:
// mostly submissions and job-status polls, with monitoring reads, RLS
// lookups, site-catalog views, ticket queries, and the occasional VOMS
// enrollment across all of the Grid3 VOs.
//
//	grid3load [-target http://127.0.0.1:8080] [-rps 150] [-duration 20s]
//	          [-diurnal-period 10s] [-diurnal-amp 0.3]
//	          [-flash-start 0.5] [-flash-frac 0.25] [-flash-mult 4]
//	          [-seed 1] [-out BENCH_serve.json]
//
// The report (schema grid3.serve.bench/1) gives offered vs sustained
// request rate, latency quantiles, and goodput — the fraction of requests
// the daemon answered usefully (2xx, or an authoritative 404 on a replica
// lookup). Overload shows up as 503 sheds: lost goodput, never a stuck
// daemon, because the ingress boundary sheds before it perturbs the engine.
// Per-phase splits separate steady-state behavior from the flash crowd.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// vos are the Grid3 VOs the generator submits and enrolls under; user 00
// of every VO is seeded by the scenario, so submissions authenticate.
var vos = []string{"usatlas", "uscms", "sdss", "ivdgl", "btev", "ligo"}

func main() {
	target := flag.String("target", "http://127.0.0.1:8080", "grid3d base URL")
	rps := flag.Float64("rps", 150, "base arrival rate, requests/second")
	duration := flag.Duration("duration", 20*time.Second, "generation window")
	diurnalPeriod := flag.Duration("diurnal-period", 10*time.Second, "diurnal cycle length (0 disables)")
	diurnalAmp := flag.Float64("diurnal-amp", 0.3, "diurnal swing as a fraction of the base rate")
	flashStart := flag.Float64("flash-start", 0.5, "flash crowd start, as a fraction of the window")
	flashFrac := flag.Float64("flash-frac", 0.25, "flash crowd length, as a fraction of the window")
	flashMult := flag.Float64("flash-mult", 4, "flash crowd rate multiplier (1 disables)")
	seed := flag.Int64("seed", 1, "generator RNG seed")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout")
	out := flag.String("out", "", "write the bench report JSON to this file")
	flag.Parse()

	g := &generator{
		target: *target,
		client: &http.Client{Timeout: *timeout},
		rng:    rand.New(rand.NewSource(*seed)),
		window: *duration,
		base:   *rps,
		diurP:  *diurnalPeriod,
		diurA:  *diurnalAmp,
		flash0: time.Duration(float64(*duration) * *flashStart),
		flash1: time.Duration(float64(*duration) * (*flashStart + *flashFrac)),
		flashX: *flashMult,
		users:  map[string]int{},
	}
	rep := g.run()
	rep.write(os.Stdout)
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("bench JSON written to %s\n", *out)
	}
	if rep.Goodput < 0.5 {
		fatal(fmt.Errorf("goodput %.2f: daemon unreachable or melting down", rep.Goodput))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "grid3load:", err)
	os.Exit(1)
}

// sample is one request's outcome.
type sample struct {
	phase   string // "normal" or "flash"
	kind    string // endpoint class
	code    int    // HTTP status, 0 on transport error
	ok      bool
	latency time.Duration
}

type generator struct {
	target         string
	client         *http.Client
	rng            *rand.Rand
	window         time.Duration
	base           float64
	diurP          time.Duration
	diurA          float64
	flash0, flash1 time.Duration
	flashX         float64

	// users counts enrollments per VO so every enroll carries a fresh DN.
	users map[string]int

	// jobIDs feeds status polls with real IDs from earlier submissions.
	jobMu  sync.Mutex
	jobIDs []string

	wg      sync.WaitGroup
	samples chan sample
}

// rate is the offered arrival rate at offset t into the window.
func (g *generator) rate(t time.Duration) float64 {
	r := g.base
	if g.diurP > 0 {
		r *= 1 + g.diurA*math.Sin(2*math.Pi*float64(t)/float64(g.diurP))
	}
	if g.inFlash(t) {
		r *= g.flashX
	}
	return r
}

func (g *generator) inFlash(t time.Duration) bool {
	return g.flashX > 1 && t >= g.flash0 && t < g.flash1
}

// run drives the open loop: exponential inter-arrival gaps at the current
// rate, each request fired on its own goroutine so a slow response never
// throttles the arrival process.
func (g *generator) run() *report {
	g.samples = make(chan sample, 65536)
	var collected []sample
	done := make(chan struct{})
	go func() {
		defer close(done)
		for s := range g.samples {
			collected = append(collected, s)
		}
	}()

	start := time.Now()
	fired := 0
	for {
		t := time.Since(start)
		if t >= g.window {
			break
		}
		gap := time.Duration(g.rng.ExpFloat64() / g.rate(t) * float64(time.Second))
		time.Sleep(gap)
		t = time.Since(start)
		if t >= g.window {
			break
		}
		phase := "normal"
		if g.inFlash(t) {
			phase = "flash"
		}
		kind, req := g.pick()
		fired++
		g.wg.Add(1)
		go g.fire(phase, kind, req)
	}
	offeredWindow := time.Since(start)
	g.wg.Wait()
	close(g.samples)
	<-done

	flashWindow := time.Duration(0)
	if g.flashX > 1 && g.flash1 > g.flash0 {
		flashWindow = g.flash1 - g.flash0
	}
	return score(collected, fired, offeredWindow, flashWindow)
}

// request is a prepared HTTP call.
type request struct {
	method string
	path   string
	body   []byte
	// okCodes are the statuses that count as goodput for this endpoint.
	okCodes map[int]bool
}

var ok2xx = map[int]bool{200: true, 201: true, 202: true}

// pick chooses the next endpoint from the portal mix. All randomness stays
// on the arrival goroutine, so the choice sequence is reproducible for a
// given seed even though responses land out of order.
func (g *generator) pick() (string, request) {
	vo := vos[g.rng.Intn(len(vos))]
	p := g.rng.Float64()
	switch {
	case p < 0.30: // submit
		body, _ := json.Marshal(map[string]any{
			"vo":              vo,
			"user":            fmt.Sprintf("/DC=org/DC=doegrids/OU=People/CN=%s user 00", vo),
			"runtime_seconds": 1800 + g.rng.Intn(7200),
		})
		return "submit", request{"POST", "/api/v1/jobs", body, ok2xx}
	case p < 0.55: // job status: a known ID when one exists, else the summary
		g.jobMu.Lock()
		n := len(g.jobIDs)
		var id string
		if n > 0 {
			id = g.jobIDs[g.rng.Intn(n)]
		}
		g.jobMu.Unlock()
		if id != "" {
			return "status", request{"GET", "/api/v1/jobs/" + id, nil, ok2xx}
		}
		return "status", request{"GET", "/api/v1/jobs", nil, ok2xx}
	case p < 0.70: // monitoring reads
		if g.rng.Intn(2) == 0 {
			return "monitor", request{"GET", "/api/v1/monitor/metrics", nil, ok2xx}
		}
		return "monitor", request{"GET", "/api/v1/monitor/monalisa", nil, ok2xx}
	case p < 0.80: // RLS lookup; an authoritative miss is a served lookup
		lfn := fmt.Sprintf("lfn:%%2F%%2F%s%%2Fdataset%%2Ffile%04d", vo, g.rng.Intn(500))
		return "rls", request{"GET", "/api/v1/rls/" + lfn, nil, map[int]bool{200: true, 404: true}}
	case p < 0.90: // site catalog
		return "sites", request{"GET", "/api/v1/sites", nil, ok2xx}
	case p < 0.95: // iGOC tickets
		return "tickets", request{"GET", "/api/v1/goc/tickets", nil, ok2xx}
	default: // VOMS enrollment, always a fresh DN
		g.users[vo]++
		body, _ := json.Marshal(map[string]any{
			"dn":   fmt.Sprintf("/DC=org/DC=doegrids/OU=People/CN=%s load user %04d", vo, g.users[vo]),
			"name": fmt.Sprintf("%s load user %d", vo, g.users[vo]),
		})
		return "enroll", request{"POST", "/api/v1/vo/" + vo + "/members", body, ok2xx}
	}
}

// fire executes one request and records its outcome.
func (g *generator) fire(phase, kind string, r request) {
	defer g.wg.Done()
	var rd io.Reader
	if r.body != nil {
		rd = bytes.NewReader(r.body)
	}
	req, err := http.NewRequest(r.method, g.target+r.path, rd)
	if err != nil {
		g.samples <- sample{phase: phase, kind: kind}
		return
	}
	t0 := time.Now()
	resp, err := g.client.Do(req)
	lat := time.Since(t0)
	s := sample{phase: phase, kind: kind, latency: lat}
	if err == nil {
		s.code = resp.StatusCode
		s.ok = r.okCodes[resp.StatusCode]
		if kind == "submit" && s.ok {
			var dto struct {
				ID string `json:"id"`
			}
			if json.NewDecoder(resp.Body).Decode(&dto) == nil && dto.ID != "" {
				g.jobMu.Lock()
				g.jobIDs = append(g.jobIDs, dto.ID)
				g.jobMu.Unlock()
			}
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	g.samples <- s
}

// --- scoring ---------------------------------------------------------------

type latencyJSON struct {
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

type phaseJSON struct {
	Requests     int         `json:"requests"`
	OfferedRPS   float64     `json:"offered_rps,omitempty"`
	SustainedRPS float64     `json:"sustained_rps"`
	Goodput      float64     `json:"goodput"`
	Latency      latencyJSON `json:"latency"`
}

type report struct {
	Schema       string               `json:"schema"`
	Kind         string               `json:"kind"`
	Duration     float64              `json:"duration_seconds"`
	Offered      int                  `json:"requests_offered"`
	Answered     int                  `json:"requests_answered"`
	OfferedRPS   float64              `json:"offered_rps"`
	SustainedRPS float64              `json:"sustained_rps"`
	Goodput      float64              `json:"goodput"`
	Shed         int                  `json:"shed_503"`
	Errors       int                  `json:"transport_errors"`
	Latency      latencyJSON          `json:"latency"`
	Phases       map[string]phaseJSON `json:"phases"`
	ByEndpoint   map[string]phaseJSON `json:"by_endpoint"`
	Codes        map[string]int       `json:"codes"`
}

func quantiles(lats []time.Duration) latencyJSON {
	if len(lats) == 0 {
		return latencyJSON{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) float64 {
		i := int(p * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Millisecond)
	}
	return latencyJSON{P50Ms: q(0.50), P90Ms: q(0.90), P99Ms: q(0.99)}
}

func scorePhase(samples []sample, window time.Duration) phaseJSON {
	var lats []time.Duration
	okCount := 0
	for _, s := range samples {
		if s.code != 0 {
			lats = append(lats, s.latency)
		}
		if s.ok {
			okCount++
		}
	}
	ph := phaseJSON{Requests: len(samples), Latency: quantiles(lats)}
	if len(samples) > 0 {
		ph.Goodput = float64(okCount) / float64(len(samples))
	}
	if window > 0 {
		ph.SustainedRPS = float64(okCount) / window.Seconds()
	}
	return ph
}

func score(samples []sample, fired int, window, flashWindow time.Duration) *report {
	rep := &report{
		Schema:     "grid3.serve.bench/1",
		Kind:       "grid3load",
		Duration:   window.Seconds(),
		Offered:    fired,
		Phases:     map[string]phaseJSON{},
		ByEndpoint: map[string]phaseJSON{},
		Codes:      map[string]int{},
	}
	var lats []time.Duration
	byPhase := map[string][]sample{}
	byKind := map[string][]sample{}
	okCount := 0
	for _, s := range samples {
		byPhase[s.phase] = append(byPhase[s.phase], s)
		byKind[s.kind] = append(byKind[s.kind], s)
		if s.code == 0 {
			rep.Errors++
			rep.Codes["error"]++
		} else {
			rep.Answered++
			rep.Codes[fmt.Sprintf("%d", s.code)]++
			lats = append(lats, s.latency)
		}
		if s.code == 503 {
			rep.Shed++
		}
		if s.ok {
			okCount++
		}
	}
	rep.OfferedRPS = float64(fired) / window.Seconds()
	rep.SustainedRPS = float64(okCount) / window.Seconds()
	if len(samples) > 0 {
		rep.Goodput = float64(okCount) / float64(len(samples))
	}
	rep.Latency = quantiles(lats)
	// Phase windows: flash gets its configured slice, normal the rest, so
	// the per-phase offered/sustained rates are comparable.
	for name, ss := range byPhase {
		w := window
		if flashWindow > 0 {
			if name == "flash" {
				w = flashWindow
			} else {
				w = window - flashWindow
			}
		}
		if w <= 0 {
			w = window
		}
		ph := scorePhase(ss, w)
		ph.OfferedRPS = float64(len(ss)) / w.Seconds()
		rep.Phases[name] = ph
	}
	for name, ss := range byKind {
		rep.ByEndpoint[name] = scorePhase(ss, 0)
	}
	return rep
}

func (rep *report) write(w io.Writer) {
	fmt.Fprintf(w, "grid3load: %d offered over %.1fs (%.1f req/s), %d answered, %d shed, %d errors\n",
		rep.Offered, rep.Duration, rep.OfferedRPS, rep.Answered, rep.Shed, rep.Errors)
	fmt.Fprintf(w, "  sustained %.1f req/s goodput %.3f — p50 %.1fms p90 %.1fms p99 %.1fms\n",
		rep.SustainedRPS, rep.Goodput, rep.Latency.P50Ms, rep.Latency.P90Ms, rep.Latency.P99Ms)
	for _, name := range []string{"normal", "flash"} {
		ph, okPhase := rep.Phases[name]
		if !okPhase {
			continue
		}
		fmt.Fprintf(w, "  %-7s %6d reqs, offered %7.1f req/s, sustained %7.1f req/s, goodput %.3f, p99 %.1fms\n",
			name, ph.Requests, ph.OfferedRPS, ph.SustainedRPS, ph.Goodput, ph.Latency.P99Ms)
	}
	names := make([]string, 0, len(rep.ByEndpoint))
	for name := range rep.ByEndpoint {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ph := rep.ByEndpoint[name]
		fmt.Fprintf(w, "    %-8s %6d reqs, goodput %.3f, p99 %.1fms\n",
			name, ph.Requests, ph.Goodput, ph.Latency.P99Ms)
	}
}
