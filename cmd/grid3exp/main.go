// Command grid3exp executes a declarative experiment grid (grid3.exp/1):
// every experiment in a checked-in spec runs deterministically through
// the campaign layer and writes the BENCH_*.json report it owns, then an
// analyzer pass regenerates the grouped CSV and the EXPERIMENTS.md
// summary block. The repo's reference evidence set is one command:
//
//	go run ./cmd/grid3exp run experiments/core.json
//
// Subcommands:
//
//	run SPEC [-out-dir DIR] [-only NAME[,NAME...]]
//	    Execute the grid. -only restricts the pass to the named
//	    experiments and skips the CSV/markdown regeneration (a partial
//	    pass must not rewrite summaries it did not recompute).
//	check SPEC
//	    Decode and validate only; prints the experiment list.
//	norm FILE
//	    Print the file's normalized JSON — wall-clock fields zeroed,
//	    keys sorted — the diffable form CI compares across runs.
package main

import (
	"fmt"
	"os"
	"strings"

	"flag"

	"grid3/internal/exp"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: grid3exp <command> [args]

commands:
  run SPEC [-out-dir DIR] [-only NAME[,NAME...]]   execute the grid
  check SPEC                                       validate the spec
  norm FILE                                        print normalized report JSON
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = runCmd(os.Args[2:])
	case "check":
		err = checkCmd(os.Args[2:])
	case "norm":
		err = normCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "grid3exp:", err)
		os.Exit(1)
	}
}

// specArg splits the positional spec path from the flag arguments so both
// "run spec.json -only x" and "run -only x spec.json" parse.
func specArg(fs *flag.FlagSet, args []string) (string, error) {
	var positional []string
	rest := args
	for len(rest) > 0 {
		if err := fs.Parse(rest); err != nil {
			return "", err
		}
		rest = fs.Args()
		if len(rest) > 0 {
			positional = append(positional, rest[0])
			rest = rest[1:]
		}
	}
	if len(positional) != 1 {
		return "", fmt.Errorf("want exactly one spec file, got %d", len(positional))
	}
	return positional[0], nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	outDir := fs.String("out-dir", "", "directory receiving every output (default: current directory)")
	only := fs.String("only", "", "comma-separated experiment names: run just these, skip summaries")
	path, err := specArg(fs, args)
	if err != nil {
		return err
	}
	spec, err := exp.DecodeFile(path)
	if err != nil {
		return err
	}
	opts := exp.RunOptions{OutDir: *outDir, Log: os.Stdout}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			if name = strings.TrimSpace(name); name != "" {
				opts.Only = append(opts.Only, name)
			}
		}
	}
	outcomes, err := exp.Run(spec, opts)
	if err != nil {
		return err
	}
	// A partial pass skips the summaries: the CSV and markdown describe
	// the whole grid, and rewriting them from a subset would lie.
	if len(opts.Only) > 0 {
		return nil
	}
	if err := exp.Analyze(spec, outcomes, *outDir); err != nil {
		return err
	}
	if spec.CSV != "" {
		fmt.Println("wrote", spec.CSV)
	}
	if spec.Markdown != "" {
		fmt.Println("rewrote", spec.Markdown)
	}
	return nil
}

func checkCmd(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	path, err := specArg(fs, args)
	if err != nil {
		return err
	}
	spec, err := exp.DecodeFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: ok (%s, %d experiments)\n", path, spec.Schema, len(spec.Experiments))
	for _, e := range spec.Experiments {
		fmt.Printf("  %-12s %-7s -> %s\n", e.Name, e.Mode, e.Out)
	}
	return nil
}

func normCmd(args []string) error {
	fs := flag.NewFlagSet("norm", flag.ExitOnError)
	path, err := specArg(fs, args)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	out, err := exp.Normalize(raw)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	_, err = os.Stdout.Write(out)
	return err
}
