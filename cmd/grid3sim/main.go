// Command grid3sim runs the full Grid3 production scenario (October 23
// 2003 through April 23 2004) and prints every figure and table from the
// paper's evaluation: Figures 2-6, Table 1, and the §7 milestones.
//
// Usage:
//
//	grid3sim [-seed N] [-scale F] [-days D] [-srm] [-no-failures] [-no-affinity]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"grid3/internal/core"
	"grid3/internal/failure"
	"grid3/internal/mdviewer"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed (same seed, same run)")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper's ~290k jobs)")
	days := flag.Int("days", 183, "scenario length in days")
	useSRM := flag.Bool("srm", false, "enable SRM space reservation (the §8 lesson)")
	noFailures := flag.Bool("no-failures", false, "disable failure injection")
	noAffinity := flag.Bool("no-affinity", false, "disable VO site affinity (uniform matchmaking)")
	quiet := flag.Bool("quiet", false, "print only the summary line")
	csvDir := flag.String("csv", "", "also write figure CSVs into this directory")
	flag.Parse()

	start := time.Now()
	s, err := core.NewScenario(core.ScenarioConfig{
		Config: core.Config{
			Seed:            *seed,
			UseSRM:          *useSRM,
			DisableAffinity: *noAffinity,
		},
		Horizon:         time.Duration(*days) * 24 * time.Hour,
		JobScale:        *scale,
		DisableFailures: *noFailures,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "grid3sim:", err)
		os.Exit(1)
	}
	s.Run()
	elapsed := time.Since(start)

	fmt.Printf("Grid3 scenario: %d days, seed %d, scale %.2f — %d jobs submitted, %d records, ran in %v\n\n",
		*days, *seed, *scale, s.SubmittedTotal(), s.Grid.ACDC.Len(), elapsed.Round(time.Millisecond))
	if *csvDir != "" {
		if err := writeCSVs(s, *csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "grid3sim: writing CSVs:", err)
		} else {
			fmt.Printf("figure CSVs written to %s\n\n", *csvDir)
		}
	}
	if *quiet {
		return
	}

	w := os.Stdout

	// §7 milestones.
	s.ComputeMilestones().Write(w)
	fmt.Fprintln(w)

	// Figure 2: integrated CPU usage during SC2003.
	mdviewer.BarChart(w, "Figure 2: integrated CPU usage during SC2003 (30 days from Oct 25), by VO",
		"CPU-days", s.Figure2(), 44)
	fmt.Fprintln(w)

	// Figure 3: differential CPU usage (weekly summary for readability).
	fig3 := s.Figure3()
	weekly := weeklyPlot(fig3)
	weekly.WriteTable(w)
	fmt.Fprintln(w)

	// Figure 4: CMS cumulative usage by site.
	mdviewer.BarChart(w, "Figure 4: CMS cumulative usage by site (150 days from Nov 2003)",
		"CPU-days", s.Figure4(), 44)
	fmt.Fprintln(w)

	// Figure 5: data consumed by VO.
	byVO, total := s.Figure5()
	mdviewer.BarChart(w, fmt.Sprintf("Figure 5: data consumed by Grid3 sites, by VO (total %.1f TB)", total),
		"TB", byVO, 44)
	fmt.Fprintln(w)

	// Figure 6: jobs by month.
	months, counts := s.Figure6()
	mdviewer.Histogram(w, "Figure 6: jobs run on Grid3 by month", months, counts, 44)
	fmt.Fprintln(w)

	// Table 1.
	s.WriteTable1(w)
	fmt.Fprintln(w)

	// Failure attribution (§6.1).
	if s.Injector != nil {
		fmt.Fprintf(w, "Failure injection: %d incidents, %.0f%% of killed jobs from site problems (paper: ~90%%)\n",
			len(s.Injector.Events()), 100*s.Injector.SiteProblemFraction())
		counts := s.Injector.CountByKind()
		killed := s.Injector.KilledByKind()
		for kind := failure.DiskFull; kind <= failure.RandomLoss; kind++ {
			if counts[kind] == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-18s %4d incidents, %5d jobs killed\n",
				kind, counts[kind], killed[kind])
		}
	}
}

// writeCSVs exports the MDViewer-style parametric plots for offline
// analysis (daily usage by VO and by site across the whole run).
func writeCSVs(s *core.Scenario, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	horizon := s.Grid.Eng.Now()
	day := 24 * time.Hour
	for _, spec := range []struct {
		name  string
		group core.GroupBy
	}{{"usage-by-vo.csv", core.ByVO}, {"usage-by-site.csv", core.BySite}} {
		f, err := os.Create(dir + "/" + spec.name)
		if err != nil {
			return err
		}
		plot := s.UsagePlot(0, horizon, day, spec.group)
		err = plot.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	f, err := os.Create(dir + "/figure3-daily.csv")
	if err != nil {
		return err
	}
	err = s.Figure3().WriteCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// weeklyPlot coarsens the daily Figure 3 series into weeks so the table
// fits a terminal.
func weeklyPlot(daily *mdviewer.Plot) *mdviewer.Plot {
	const week = 7
	out := &mdviewer.Plot{Title: daily.Title + " — weekly means", Unit: daily.Unit}
	nWeeks := (len(daily.XLabels) + week - 1) / week
	for wk := 0; wk < nWeeks; wk++ {
		out.XLabels = append(out.XLabels, fmt.Sprintf("week %d", wk+1))
	}
	for _, s := range daily.Series {
		vals := make([]float64, nWeeks)
		for wk := 0; wk < nWeeks; wk++ {
			sum, n := 0.0, 0
			for d := wk * week; d < (wk+1)*week && d < len(s.Values); d++ {
				sum += s.Values[d]
				n++
			}
			if n > 0 {
				vals[wk] = sum / float64(n)
			}
		}
		out.Series = append(out.Series, mdviewer.Series{Name: s.Name, Values: vals})
	}
	return out
}
