// Command grid3sim runs the full Grid3 production scenario (October 23
// 2003 through April 23 2004) and prints every figure and table from the
// paper's evaluation: Figures 2-6, Table 1, and the §7 milestones.
//
// Usage:
//
//	grid3sim [-seed N] [-scale F] [-days D] [-srm] [-no-failures] [-no-affinity]
//
// Multi-seed campaign sweeps fan across CPUs, one engine per worker:
//
//	grid3sim -seeds 1,2,3,4 [-parallel N] [-json-out out.json]
//
// Observability (job-lifecycle spans and the metrics registry) is off by
// default; either flag enables it for the run:
//
//	grid3sim -trace-out trace.jsonl -metrics-out metrics.txt
//
// Fault management: -health arms read-only site probing with circuit
// breakers and iGOC tickets; -recovery closes the loop (breaker-aware
// matchmaking and planning, replica failover, bounded stage retries). The
// chaos campaign mode sweeps failure intensity across seeds, running a
// no-reaction baseline and a recovery run at every point:
//
//	grid3sim -chaos 1,2,4 -seeds 1,2,3 -scale 0.05 -days 30 [-json-out out.json]
//
// Testbed scaling: -sites N grows the site population past the historical
// 27 with a seeded synthetic generator (N <= 27 is a catalog prefix). The
// scale-sweep mode measures simulation cost across populations:
//
//	grid3sim -sites 1000 -days 1
//	grid3sim -scale-sweep 27,100,300,1000 -days 1 [-json-out out.json]
//
// Sharding: -shards N partitions the testbed into N regions and runs the
// pure per-region evaluation phases on a worker goroutine each. The run's
// output is bit-identical to -shards 1 at every N; the bench record gains
// a parallel_speedup field (total region work over the critical path):
//
//	grid3sim -sites 1000 -days 1 -shards 4 -json-out bench.json
//
// Data plane: -doors bounds concurrent GridFTP flows per endpoint (excess
// transfers queue FIFO), -cleanup arms the SRM lifecycle loop (scheduled
// reservation expiry, pins, watermark eviction), and -replica-rank picks
// Pegasus stage-in sources by live WAN load. The data campaign scores the
// raw-GridFTP baseline against the managed plane per seed:
//
//	grid3sim -data-sweep -seeds 1,2,3 -days 30 -scale 0.05 -doors 4 [-json-out out.json]
//
// Checkpoint/restore: -checkpoint-at pauses a single-seed run at the listed
// sim times and commits a snapshot to the -checkpoint-out file (capture is a
// pure read, so the run's output is byte-identical to one that never
// checkpoints); -restore rebuilds the run from a snapshot file by verified
// deterministic replay and continues to the horizon, printing the same
// figures the straight run would:
//
//	grid3sim -days 20 -scale 0.1 -checkpoint-at 240h -checkpoint-out snap.g3
//	grid3sim -restore snap.g3
//
// Monitoring ingestion: -ingest-batch N routes station metrics, gmetad
// samples, and ACDC records through bounded batching rings that seal on
// batch-full or window expiry (-ingest-window, default the monitor
// interval) and commit through a single writer. Output is bit-identical
// to the per-event path at every N; windows double as accounting
// periods, sealing per-VO Merkle usage roots. The ingest-sweep mode
// measures the pipeline and audit-verifies the ledger:
//
//	grid3sim -days 20 -scale 0.1 -ingest-batch 256
//	grid3sim -ingest-sweep [-json-out out.json]
//
// Warm starts fork one checkpointed steady state into variants that share
// the verified warmup but draw their failure futures from per-variant
// forward seeds (0 replays the recorded stream):
//
//	grid3sim -restore snap.g3 -warm-seeds 0,101,102,103 [-json-out warm.json]
//
// Every mode writes its report JSON through the one -json-out flag; the
// report schema follows the mode (chaos, scale sweep, data sweep, ingest
// sweep, seed sweep, warm start, or the single-run bench record):
//
//	grid3sim -chaos 1,2,4 -seeds 1,2,3 -json-out chaos.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"grid3/internal/campaign"
	"grid3/internal/checkpoint"
	"grid3/internal/core"
	"grid3/internal/failure"
	"grid3/internal/mdviewer"
	"grid3/internal/obs"
)

func main() {
	// The mode-specific JSON aliases (-bench-json, -chaos-json, -scale-json,
	// -data-json) were collapsed into -json-out; catch stragglers before
	// flag.Parse would dump the whole usage text at them.
	for _, arg := range os.Args[1:] {
		name := strings.TrimLeft(strings.SplitN(arg, "=", 2)[0], "-")
		switch name {
		case "bench-json", "chaos-json", "scale-json", "data-json":
			fmt.Fprintf(os.Stderr, "grid3sim: -%s was removed; every mode writes its report through -json-out now\n", name)
			os.Exit(2)
		}
	}

	seed := flag.Int64("seed", 1, "simulation seed (same seed, same run)")
	seedList := flag.String("seeds", "", "comma-separated seed list: sweep all of them in parallel")
	parallel := flag.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS)")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper's ~290k jobs)")
	days := flag.Int("days", 183, "scenario length in days")
	useSRM := flag.Bool("srm", false, "enable SRM space reservation (the §8 lesson)")
	noFailures := flag.Bool("no-failures", false, "disable failure injection")
	noAffinity := flag.Bool("no-affinity", false, "disable VO site affinity (uniform matchmaking)")
	quiet := flag.Bool("quiet", false, "print only the summary line")
	csvDir := flag.String("csv", "", "also write figure CSVs into this directory")
	traceOut := flag.String("trace-out", "", "enable tracing and write the span trace (JSONL) to this file")
	metricsOut := flag.String("metrics-out", "", "enable metrics and write the registry snapshot (text) to this file")
	healthOn := flag.Bool("health", false, "arm site health probing with circuit breakers (read-only)")
	recoveryOn := flag.Bool("recovery", false, "close the fault-management loop (implies -health)")
	chaosList := flag.String("chaos", "", "comma-separated failure intensities: run the chaos campaign over seeds x intensities")
	sites := flag.Int("sites", 0, "testbed size: 0 = the historical 27-site catalog, larger adds synthetic sites")
	scaleSweepList := flag.String("scale-sweep", "", "comma-separated site counts: run the testbed scale sweep")
	doors := flag.Int("doors", 0, "bound concurrent GridFTP flows per endpoint (0 = historical unbounded WAN)")
	cleanupOn := flag.Bool("cleanup", false, "arm the SRM lifecycle loop (scheduled expiry, pins, watermark eviction sweep)")
	replicaRank := flag.Bool("replica-rank", false, "rank Pegasus stage-in replicas by live WAN load")
	dataSweepOn := flag.Bool("data-sweep", false, "run the data campaign: raw-GridFTP baseline vs managed data plane, per seed")
	shards := flag.Int("shards", 0, "partition the testbed into N regions and evaluate them on a worker each (output is identical at every N)")
	ingestBatch := flag.Int("ingest-batch", 0, "batch the monitoring path at N events per commit and arm the Merkle usage ledger (0 = per-event; output is identical at every N)")
	ingestWindow := flag.Duration("ingest-window", 0, "batching/audit window (0 = the monitor interval; needs -ingest-batch)")
	ingestSweepOn := flag.Bool("ingest-sweep", false, "run the ingestion campaign: synthetic metric stream per batch size plus an audit-verified batched scenario")
	upgradeAt := flag.Duration("upgrade-at", 0, "start the rolling VDT/Pacman upgrade wave at this sim time (0 = off)")
	upgradeStagger := flag.Duration("upgrade-stagger", 0, "tier-to-tier stagger for -upgrade-at (0 = the 48h default)")
	certLifetime := flag.Duration("cert-lifetime", 0, "arm GSI host-credential expiry storms with this per-site lifetime (0 = off)")
	certRenewal := flag.Duration("cert-renewal", 0, "mean renewal outage for -cert-lifetime (0 = the 3h default)")
	jsonOut := flag.String("json-out", "", "write the active mode's report JSON to this file (schema follows the mode)")
	checkpointAt := flag.String("checkpoint-at", "", "comma-separated sim times (e.g. 240h,360h): capture a snapshot at each into -checkpoint-out")
	checkpointOut := flag.String("checkpoint-out", "", "snapshot file receiving -checkpoint-at captures (the file holds the latest capture)")
	restorePath := flag.String("restore", "", "restore the run from this snapshot file (verified deterministic replay) and continue")
	warmSeeds := flag.String("warm-seeds", "", "comma-separated forward failure seeds: fork the -restore snapshot into one variant per seed (0 = replay the recorded stream)")
	flag.Parse()
	daysSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "days" {
			daysSet = true
		}
	})

	cfg := core.ScenarioConfig{
		Config: core.Config{
			Seed:                 *seed,
			UseSRM:               *useSRM,
			DisableAffinity:      *noAffinity,
			EnableHealth:         *healthOn,
			EnableRecovery:       *recoveryOn,
			TestbedSites:         *sites,
			TransferDoors:        *doors,
			EnableStorageCleanup: *cleanupOn,
			EnableReplicaRanking: *replicaRank,
			Shards:               *shards,
			IngestBatch:          *ingestBatch,
			IngestWindow:         *ingestWindow,
		},
		Horizon:         time.Duration(*days) * 24 * time.Hour,
		JobScale:        *scale,
		DisableFailures: *noFailures,
	}
	// Wave families: the tuning flags require their arming flag, the same
	// loud refusal the checkpoint pair gets.
	if *upgradeStagger != 0 && *upgradeAt == 0 {
		fmt.Fprintln(os.Stderr, "grid3sim: -upgrade-stagger needs -upgrade-at")
		os.Exit(2)
	}
	if *certRenewal != 0 && *certLifetime == 0 {
		fmt.Fprintln(os.Stderr, "grid3sim: -cert-renewal needs -cert-lifetime")
		os.Exit(2)
	}
	cfg.UpgradeWave = core.UpgradeWaveConfig{Start: *upgradeAt, Stagger: *upgradeStagger}
	cfg.CertWave = core.CertWaveConfig{Lifetime: *certLifetime, RenewalDelay: *certRenewal}

	// Checkpoint flags arm the single-run capture loop; both halves are
	// needed (times without a destination, or a destination with nothing to
	// capture, are configuration mistakes worth refusing loudly).
	if (*checkpointAt == "") != (*checkpointOut == "") {
		fmt.Fprintln(os.Stderr, "grid3sim: -checkpoint-at and -checkpoint-out go together")
		os.Exit(2)
	}
	if *checkpointAt != "" {
		at, err := parseDurations(*checkpointAt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "grid3sim:", err)
			os.Exit(2)
		}
		cfg.CheckpointAt = at
		cfg.CheckpointStore = checkpoint.NewFileStore(*checkpointOut)
	}

	if *warmSeeds != "" {
		if *restorePath == "" {
			fmt.Fprintln(os.Stderr, "grid3sim: -warm-seeds needs a -restore snapshot to fork from")
			os.Exit(2)
		}
		var horizon time.Duration
		if daysSet {
			horizon = time.Duration(*days) * 24 * time.Hour
		}
		if err := warmStart(*restorePath, *warmSeeds, horizon, *shards, *parallel, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "grid3sim:", err)
			os.Exit(1)
		}
		return
	}

	if *dataSweepOn {
		if err := dataSweep(*seedList, *seed, *days, *parallel, *jsonOut, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "grid3sim:", err)
			os.Exit(1)
		}
		return
	}

	if *ingestSweepOn {
		if err := ingestSweep(*ingestWindow, *jsonOut, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "grid3sim:", err)
			os.Exit(1)
		}
		return
	}

	if *scaleSweepList != "" {
		if err := scaleSweep(*scaleSweepList, *seedList, *seed, *days, *jsonOut, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "grid3sim:", err)
			os.Exit(1)
		}
		return
	}

	if *chaosList != "" {
		if err := chaos(*chaosList, *seedList, *seed, *parallel, *jsonOut, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "grid3sim:", err)
			os.Exit(1)
		}
		return
	}

	if *seedList != "" {
		if *traceOut != "" || *metricsOut != "" {
			fmt.Fprintln(os.Stderr, "grid3sim: -trace-out/-metrics-out apply to single-seed runs only")
			os.Exit(1)
		}
		if err := sweep(*seedList, *parallel, *jsonOut, *quiet, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "grid3sim:", err)
			os.Exit(1)
		}
		return
	}

	// Observability outputs: sinks flush when the scenario finishes, so the
	// files are opened up front and closed after the run.
	var obsClose []func() error
	addObsFile := func(path string, attach func(*bufio.Writer)) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "grid3sim:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		attach(bw)
		obsClose = append(obsClose, func() error {
			if err := bw.Flush(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
	}
	if *traceOut != "" {
		addObsFile(*traceOut, func(w *bufio.Writer) {
			cfg.TraceSinks = append(cfg.TraceSinks, obs.JSONLSink(w))
		})
	}
	if *metricsOut != "" {
		addObsFile(*metricsOut, func(w *bufio.Writer) {
			cfg.MetricsSinks = append(cfg.MetricsSinks, obs.TextMetricsSink(w))
		})
	}

	start := time.Now()
	var s *core.Scenario
	var err error
	if *restorePath != "" {
		// Restore keeps the snapshot's recorded configuration; the flags that
		// may legitimately differ at restore time (shards, an extended
		// horizon, fresh observability sinks, re-armed checkpointing) pass
		// through the override whitelist.
		var snap *checkpoint.Snapshot
		snap, _, err = checkpoint.Latest(checkpoint.NewFileStore(*restorePath))
		if err != nil {
			fmt.Fprintln(os.Stderr, "grid3sim:", err)
			os.Exit(1)
		}
		ov := core.RestoreOverrides{
			Shards:          *shards,
			TraceSinks:      cfg.TraceSinks,
			MetricsSinks:    cfg.MetricsSinks,
			CheckpointAt:    cfg.CheckpointAt,
			CheckpointStore: cfg.CheckpointStore,
		}
		if daysSet {
			ov.Horizon = time.Duration(*days) * 24 * time.Hour
		}
		s, err = core.RestoreScenario(snap, ov)
		if err == nil {
			// stderr, so stdout stays byte-identical to the straight run —
			// the property CI diffs.
			fmt.Fprintf(os.Stderr, "grid3sim: restored %s (sim %v)\n", snap.ID(), snap.SimTime)
		}
	} else {
		s, err = core.NewScenario(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "grid3sim:", err)
		os.Exit(1)
	}
	if err := s.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "grid3sim:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	if n := len(s.CheckpointIDs); n > 0 {
		// stderr for the same reason as the restore banner above.
		fmt.Fprintf(os.Stderr, "grid3sim: %d snapshot(s) written to %s (latest %s)\n",
			n, *checkpointOut, s.CheckpointIDs[n-1])
	}
	for _, closeFn := range obsClose {
		if err := closeFn(); err != nil {
			fmt.Fprintln(os.Stderr, "grid3sim: writing observability output:", err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		fmt.Printf("span trace written to %s\n", *traceOut)
	}
	if *metricsOut != "" {
		fmt.Printf("metrics snapshot written to %s\n", *metricsOut)
	}

	// Report the configuration the scenario actually ran with: on a restore
	// the flag defaults are meaningless, the snapshot's recorded values rule.
	runDays := int(s.Cfg.Horizon / (24 * time.Hour))
	runSeed, runScale := s.Cfg.Config.Seed, s.Cfg.JobScale
	fmt.Printf("Grid3 scenario: %d days, seed %d, scale %.2f — %d jobs submitted, %d records, %d events, ran in %v\n\n",
		runDays, runSeed, runScale, s.SubmittedTotal(), s.Grid.ACDC.Len(), s.Grid.Eng.Processed(),
		elapsed.Round(time.Millisecond))
	if *jsonOut != "" {
		rec := benchRecord{
			Kind:       "grid3sim-run",
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Workers:    1,
			Seeds:      []int64{runSeed},
			Scale:      runScale,
			Days:       runDays,
			Shards:     *shards,
			WallSecs:   elapsed.Seconds(),
			SerialSecs: elapsed.Seconds(),
			Speedup:    1,
			Events:     s.Grid.Eng.Processed(),
			Runs: []benchRun{{
				Seed: runSeed, ElapsedSecs: elapsed.Seconds(),
				Events: s.Grid.Eng.Processed(),
				Jobs:   s.SubmittedTotal(), Records: s.Grid.ACDC.Len(),
			}},
		}
		rec.EventsPerSec = float64(rec.Events) / elapsed.Seconds()
		if st := s.Grid.ShardStats(); st.Windows > 0 {
			rec.ParallelSpeedup = st.Speedup()
		}
		if err := writeBenchJSON(*jsonOut, rec); err != nil {
			fmt.Fprintln(os.Stderr, "grid3sim: writing bench JSON:", err)
		}
	}
	if *csvDir != "" {
		if err := writeCSVs(s, *csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "grid3sim: writing CSVs:", err)
		} else {
			fmt.Printf("figure CSVs written to %s\n\n", *csvDir)
		}
	}
	if *quiet {
		return
	}

	w := os.Stdout

	// §7 milestones.
	s.ComputeMilestones().Write(w)
	fmt.Fprintln(w)

	// Figure 2: integrated CPU usage during SC2003.
	mdviewer.BarChart(w, "Figure 2: integrated CPU usage during SC2003 (30 days from Oct 25), by VO",
		"CPU-days", s.Figure2(), 44)
	fmt.Fprintln(w)

	// Figure 3: differential CPU usage (weekly summary for readability).
	fig3 := s.Figure3()
	weekly := weeklyPlot(fig3)
	weekly.WriteTable(w)
	fmt.Fprintln(w)

	// Figure 4: CMS cumulative usage by site.
	mdviewer.BarChart(w, "Figure 4: CMS cumulative usage by site (150 days from Nov 2003)",
		"CPU-days", s.Figure4(), 44)
	fmt.Fprintln(w)

	// Figure 5: data consumed by VO.
	byVO, total := s.Figure5()
	mdviewer.BarChart(w, fmt.Sprintf("Figure 5: data consumed by Grid3 sites, by VO (total %.1f TB)", total),
		"TB", byVO, 44)
	fmt.Fprintln(w)

	// Figure 6: jobs by month.
	months, counts := s.Figure6()
	mdviewer.Histogram(w, "Figure 6: jobs run on Grid3 by month", months, counts, 44)
	fmt.Fprintln(w)

	// Table 1.
	s.WriteTable1(w)
	fmt.Fprintln(w)

	// Failure attribution (§6.1).
	if s.Injector != nil {
		fmt.Fprintf(w, "Failure injection: %d incidents, %.0f%% of killed jobs from site problems (paper: ~90%%)\n",
			len(s.Injector.Events()), 100*s.Injector.SiteProblemFraction())
		counts := s.Injector.CountByKind()
		killed := s.Injector.KilledByKind()
		for kind := failure.DiskFull; kind <= failure.RandomLoss; kind++ {
			if counts[kind] == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-18s %4d incidents, %5d jobs killed\n",
				kind, counts[kind], killed[kind])
		}
	}

	// Wave-family summaries (only when armed, so default output is
	// byte-identical to a wave-free build).
	if uw := s.Upgrade; uw != nil {
		fmt.Fprintf(w, "Upgrade wave: %d/%d sites on the new release (%d reinstall kills, %d skew kills, converged at %v)\n",
			uw.SitesUpgraded, len(s.Grid.Order), uw.RestartKills, uw.SkewKills, uw.ConvergedAt)
	}
	if cw := s.Certs; cw != nil {
		fmt.Fprintf(w, "Cert storms: %d expiries, %d renewals, %d revocations\n",
			cw.Expiries, cw.Renewals, cw.Revocations)
	}
}

// writeCSVs exports the MDViewer-style parametric plots for offline
// analysis (daily usage by VO and by site across the whole run).
func writeCSVs(s *core.Scenario, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	horizon := s.Grid.Eng.Now()
	day := 24 * time.Hour
	for _, spec := range []struct {
		name  string
		group core.GroupBy
	}{{"usage-by-vo.csv", core.ByVO}, {"usage-by-site.csv", core.BySite}} {
		f, err := os.Create(dir + "/" + spec.name)
		if err != nil {
			return err
		}
		plot := s.UsagePlot(0, horizon, day, spec.group)
		err = plot.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	f, err := os.Create(dir + "/figure3-daily.csv")
	if err != nil {
		return err
	}
	err = s.Figure3().WriteCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// weeklyPlot coarsens the daily Figure 3 series into weeks so the table
// fits a terminal.
func weeklyPlot(daily *mdviewer.Plot) *mdviewer.Plot {
	const week = 7
	out := &mdviewer.Plot{Title: daily.Title + " — weekly means", Unit: daily.Unit}
	nWeeks := (len(daily.XLabels) + week - 1) / week
	for wk := 0; wk < nWeeks; wk++ {
		out.XLabels = append(out.XLabels, fmt.Sprintf("week %d", wk+1))
	}
	for _, s := range daily.Series {
		vals := make([]float64, nWeeks)
		for wk := 0; wk < nWeeks; wk++ {
			sum, n := 0.0, 0
			for d := wk * week; d < (wk+1)*week && d < len(s.Values); d++ {
				sum += s.Values[d]
				n++
			}
			if n > 0 {
				vals[wk] = sum / float64(n)
			}
		}
		out.Series = append(out.Series, mdviewer.Series{Name: s.Name, Values: vals})
	}
	return out
}

// sweep runs the multi-seed campaign mode: every seed is an independent
// scenario fanned across workers, each on its own engine.
func sweep(seedList string, workers int, benchJSON string, quiet bool, cfg core.ScenarioConfig) error {
	seeds, err := parseSeeds(seedList)
	if err != nil {
		return err
	}
	runs := make([]campaign.Run, len(seeds))
	for i, s := range seeds {
		runs[i] = campaign.Run{Seed: s, Scale: cfg.JobScale, Config: cfg}
	}
	rep, err := campaign.Sweep(runs, workers)
	if err != nil {
		return err
	}
	rep.Write(os.Stdout)
	if !quiet {
		for _, r := range rep.Runs {
			fmt.Printf("\n=== seed %d (%d jobs, %d records, %v) ===\n%s\n%s",
				r.Seed, r.Submitted, r.Records, r.Elapsed.Round(time.Millisecond),
				r.MilestonesText, r.Table1Text)
		}
	}
	if benchJSON != "" {
		rec := benchRecord{
			Kind:       "grid3sim-sweep",
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Workers:    rep.Workers,
			Seeds:      seeds,
			Scale:      cfg.JobScale,
			Days:       int(cfg.Horizon / (24 * time.Hour)),
			WallSecs:   rep.Elapsed.Seconds(),
		}
		var serial time.Duration
		for _, r := range rep.Runs {
			serial += r.Elapsed
			rec.Events += r.Events
			rec.Runs = append(rec.Runs, benchRun{
				Seed: r.Seed, ElapsedSecs: r.Elapsed.Seconds(),
				Events: r.Events, Jobs: r.Submitted, Records: r.Records,
			})
		}
		rec.SerialSecs = serial.Seconds()
		rec.Speedup = serial.Seconds() / rec.WallSecs
		rec.EventsPerSec = float64(rec.Events) / rec.WallSecs
		if err := writeBenchJSON(benchJSON, rec); err != nil {
			return err
		}
		fmt.Printf("\nbench JSON written to %s\n", benchJSON)
	}
	return nil
}

func parseSeeds(seedList string) ([]int64, error) {
	var seeds []int64
	for _, part := range strings.Split(seedList, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds entry %q: %w", part, err)
		}
		seeds = append(seeds, n)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("-seeds %q names no seeds", seedList)
	}
	return seeds, nil
}

// parseDurations parses a comma-separated -checkpoint-at list ("240h,15d"
// is not valid Go syntax; use hour forms like 240h or 240h30m).
func parseDurations(list string) ([]time.Duration, error) {
	var out []time.Duration
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad -checkpoint-at entry %q (want a positive Go duration like 240h)", part)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-checkpoint-at %q names no times", list)
	}
	return out, nil
}

// warmStart runs the warm-start campaign: the -restore snapshot forked into
// one variant per forward seed, every fork sharing the digest-verified
// warmup prefix.
func warmStart(snapPath, seedList string, horizon time.Duration, shards, workers int, jsonPath string) error {
	snap, _, err := checkpoint.Latest(checkpoint.NewFileStore(snapPath))
	if err != nil {
		return err
	}
	seeds, err := parseSeeds(seedList)
	if err != nil {
		return fmt.Errorf("-warm-seeds: %w", err)
	}
	variants := make([]campaign.WarmVariant, len(seeds))
	for i, fs := range seeds {
		variants[i] = campaign.WarmVariant{
			Name:        fmt.Sprintf("seed%d", fs),
			ForwardSeed: fs,
			Horizon:     horizon,
			Shards:      shards,
		}
	}
	rep, err := campaign.WarmStart(campaign.WarmStartConfig{
		Snapshot: snap,
		Variants: variants,
		Workers:  workers,
	})
	if err != nil {
		return err
	}
	rep.Write(os.Stdout)
	if jsonPath != "" {
		if err := writeReportJSON(jsonPath, rep); err != nil {
			return err
		}
		fmt.Printf("\nwarm-start JSON written to %s\n", jsonPath)
	}
	return nil
}

// chaos runs the chaos campaign: seeds x intensities, each point measured
// with and without the recovery loop against a failure-free reference.
func chaos(intensityList, seedList string, seed int64, workers int, jsonPath string, cfg core.ScenarioConfig) error {
	var intensities []float64
	for _, part := range strings.Split(intensityList, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("bad -chaos intensity %q", part)
		}
		intensities = append(intensities, v)
	}
	seeds := []int64{seed}
	if seedList != "" {
		var err error
		if seeds, err = parseSeeds(seedList); err != nil {
			return err
		}
	}
	rep, err := campaign.ChaosSweep(campaign.ChaosSweepConfig{
		Seeds:       seeds,
		Intensities: intensities,
		Base:        cfg,
		Workers:     workers,
	})
	if err != nil {
		return err
	}
	rep.Write(os.Stdout)
	if jsonPath != "" {
		if err := writeReportJSON(jsonPath, rep); err != nil {
			return err
		}
		fmt.Printf("\nchaos JSON written to %s\n", jsonPath)
	}
	return nil
}

// writeReportJSON writes any sweep report's versioned JSON rendering.
func writeReportJSON(path string, rep interface{ JSON() ([]byte, error) }) error {
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// scaleSweep runs the testbed scale campaign: the same scenario at
// growing site populations, measured serially so per-point allocation
// deltas are clean.
func scaleSweep(countList, seedList string, seed int64, days int, jsonPath string, cfg core.ScenarioConfig) error {
	var counts []int
	for _, part := range strings.Split(countList, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -scale-sweep site count %q", part)
		}
		counts = append(counts, n)
	}
	seeds := []int64{seed}
	if seedList != "" {
		var err error
		if seeds, err = parseSeeds(seedList); err != nil {
			return err
		}
	}
	rep, err := campaign.ScaleSweep(campaign.ScaleSweepConfig{
		SiteCounts: counts,
		Seeds:      seeds,
		Days:       days,
		JobScale:   cfg.JobScale,
		Base:       cfg,
	})
	if err != nil {
		return err
	}
	rep.Write(os.Stdout)
	if jsonPath != "" {
		if err := writeReportJSON(jsonPath, rep); err != nil {
			return err
		}
		fmt.Printf("\nscale JSON written to %s\n", jsonPath)
	}
	return nil
}

// ingestSweep runs the monitoring-ingestion campaign: the synthetic
// metric stream through the repository per batch size (0 = per-event
// baseline), plus one small batched scenario whose usage ledger is fully
// audit-verified.
func ingestSweep(window time.Duration, jsonPath string, cfg core.ScenarioConfig) error {
	rep, err := campaign.IngestSweep(campaign.IngestSweepConfig{
		Window: window,
		Base:   cfg,
	})
	if err != nil {
		return err
	}
	rep.Write(os.Stdout)
	if jsonPath != "" {
		if err := writeReportJSON(jsonPath, rep); err != nil {
			return err
		}
		fmt.Printf("\ningest JSON written to %s\n", jsonPath)
	}
	return nil
}

// dataSweep runs the data campaign: every seed measured with the raw
// GridFTP baseline and the managed data plane (SRM lifecycle, transfer
// doors, replica ranking).
func dataSweep(seedList string, seed int64, days, workers int, jsonPath string, cfg core.ScenarioConfig) error {
	seeds := []int64{seed}
	if seedList != "" {
		var err error
		if seeds, err = parseSeeds(seedList); err != nil {
			return err
		}
	}
	rep, err := campaign.DataSweep(campaign.DataSweepConfig{
		Seeds:     seeds,
		Days:      days,
		Doors:     cfg.TransferDoors,
		Watermark: cfg.CleanupWatermark,
		Base:      cfg,
		Workers:   workers,
	})
	if err != nil {
		return err
	}
	rep.Write(os.Stdout)
	if jsonPath != "" {
		if err := writeReportJSON(jsonPath, rep); err != nil {
			return err
		}
		fmt.Printf("\ndata JSON written to %s\n", jsonPath)
	}
	return nil
}

// benchRecord is the -json-out bench schema, shared by single runs and
// sweeps.
type benchRecord struct {
	Kind       string  `json:"kind"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	Seeds      []int64 `json:"seeds"`
	Scale      float64 `json:"scale"`
	Days       int     `json:"days"`
	// Shards is the -shards region count (0 = serial run).
	Shards   int     `json:"shards,omitempty"`
	WallSecs float64 `json:"wall_seconds"`
	// SerialSecs sums per-run elapsed times; in sweep mode those are
	// measured under worker contention, so SerialSecs/Speedup estimate
	// (and on oversubscribed CPUs overstate) the true serial baseline.
	SerialSecs float64 `json:"summed_run_seconds"`
	Speedup    float64 `json:"speedup_est"`
	// ParallelSpeedup is the sharded run's achieved work-parallelism:
	// summed per-region evaluation work divided by the critical path
	// (the per-barrier maximum). Present only when -shards > 1 did work.
	ParallelSpeedup float64    `json:"parallel_speedup,omitempty"`
	Events          uint64     `json:"events_total"`
	EventsPerSec    float64    `json:"events_per_second"`
	Runs            []benchRun `json:"runs"`
}

type benchRun struct {
	Seed        int64   `json:"seed"`
	ElapsedSecs float64 `json:"elapsed_seconds"`
	Events      uint64  `json:"events"`
	Jobs        int     `json:"jobs"`
	Records     int     `json:"records"`
}

func writeBenchJSON(path string, rec benchRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
