// Command gridftp is a real TCP GridFTP-style file tool. It can run a
// GSI-authenticated server over an in-memory store, or act as a client
// performing put/get/size/delete against one.
//
// A self-contained demo (server + CA + proxy + client in one process):
//
//	gridftp -demo
//
// Long-running server plus separate client invocations are also supported;
// because credentials are generated in-process, client mode is mainly
// useful against the same process's printed CA material in tests.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"grid3/internal/gridftp"
	"grid3/internal/gsi"
)

func main() {
	demo := flag.Bool("demo", true, "run the end-to-end demo")
	sizeKB := flag.Int("kb", 256, "demo file size in KiB")
	flag.Parse()

	if !*demo {
		fmt.Fprintln(os.Stderr, "only -demo mode is wired in this build")
		os.Exit(2)
	}
	if err := runDemo(*sizeKB); err != nil {
		fmt.Fprintln(os.Stderr, "gridftp:", err)
		os.Exit(1)
	}
}

func runDemo(sizeKB int) error {
	now := time.Now()
	ca, err := gsi.NewCA("/CN=Grid3 demo CA", now.Add(-time.Hour), 24*time.Hour)
	if err != nil {
		return err
	}
	user, err := ca.Issue("/OU=People/CN=Demo User", now.Add(-time.Minute), 12*time.Hour)
	if err != nil {
		return err
	}
	proxy, err := gsi.NewProxy(user, now, 6*time.Hour)
	if err != nil {
		return err
	}
	gridmap := gsi.NewGridmap()
	gridmap.Map(user.Cert.Subject, "ivdgl")

	srv := gridftp.NewServer(gridftp.NewFileStore(64<<20), gsi.NewTrustStore(ca.Certificate()), gridmap)
	addr, err := srv.Serve()
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Println("server listening on", addr)

	client, err := gridftp.Dial(addr, proxy)
	if err != nil {
		return err
	}
	defer client.Close()
	fmt.Printf("authenticated as %s → account %s\n", proxy.Identity(), client.Account)

	payload := make([]byte, sizeKB<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	start := time.Now()
	if err := client.Put("/data/demo.bin", payload); err != nil {
		return err
	}
	n, err := client.Size("/data/demo.bin")
	if err != nil {
		return err
	}
	back, err := client.Get("/data/demo.bin")
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	ok := len(back) == len(payload)
	for i := range back {
		if back[i] != payload[i] {
			ok = false
			break
		}
	}
	if !ok {
		return fmt.Errorf("round-trip corrupted payload")
	}
	fmt.Printf("put+size+get %d KiB in %v (size reported %d) — data intact\n", sizeKB, elapsed.Round(time.Microsecond), n)
	return client.Delete("/data/demo.bin")
}
