// Command vdplan demonstrates the Chimera → Pegasus planning pipeline: it
// builds the ATLAS three-step virtual-data catalog (§4.1), plans the
// derivation of N reconstructed datasets, maps the abstract DAG onto the
// Grid3 site catalog, and prints the concrete workflow.
//
// Usage:
//
//	vdplan [-batches N] [-policy vo-affinity|load-balanced|round-robin]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"grid3/internal/chimera"
	"grid3/internal/core"
	"grid3/internal/pegasus"
	"grid3/internal/vo"
)

func main() {
	batches := flag.Int("batches", 3, "event batches to reconstruct")
	policyName := flag.String("policy", "vo-affinity", "site selection policy")
	flag.Parse()

	var policy pegasus.Policy
	switch *policyName {
	case "vo-affinity":
		policy = pegasus.VOAffinity
	case "load-balanced":
		policy = pegasus.LoadBalanced
	case "round-robin":
		policy = pegasus.RoundRobin
	default:
		fmt.Fprintln(os.Stderr, "vdplan: unknown policy", *policyName)
		os.Exit(2)
	}

	if err := run(*batches, policy); err != nil {
		fmt.Fprintln(os.Stderr, "vdplan:", err)
		os.Exit(1)
	}
}

func run(batches int, policy pegasus.Policy) error {
	// Chimera: the ATLAS pipeline (pythia → atlsim → atrecon).
	cat := chimera.NewCatalog()
	cat.AddTR(&chimera.Transformation{Name: "pythia", MeanRuntime: time.Hour, Walltime: 4 * time.Hour, StagingFactor: 1, OutputBytes: 100 << 20, RequiresApp: "atlas-gce-7.0.3"})
	cat.AddTR(&chimera.Transformation{Name: "atlsim", MeanRuntime: 8 * time.Hour, Walltime: 24 * time.Hour, StagingFactor: 2, OutputBytes: 2 << 30, RequiresApp: "atlas-gce-7.0.3"})
	cat.AddTR(&chimera.Transformation{Name: "atrecon", MeanRuntime: 4 * time.Hour, Walltime: 12 * time.Hour, StagingFactor: 2, OutputBytes: 500 << 20, RequiresApp: "atlas-gce-7.0.3"})
	var requests []string
	for b := 1; b <= batches; b++ {
		gen := fmt.Sprintf("dc2.%04d", b)
		cat.AddDV(&chimera.Derivation{ID: "gen-" + gen, TR: "pythia",
			Inputs: []string{"lfn:pythia-card"}, Outputs: []string{"lfn:evgen." + gen}})
		cat.AddDV(&chimera.Derivation{ID: "sim-" + gen, TR: "atlsim",
			Inputs: []string{"lfn:evgen." + gen, "lfn:geometry-db"}, Outputs: []string{"lfn:hits." + gen}})
		cat.AddDV(&chimera.Derivation{ID: "reco-" + gen, TR: "atrecon",
			Inputs: []string{"lfn:hits." + gen, "lfn:calib-db"}, Outputs: []string{"lfn:esd." + gen}})
		requests = append(requests, "lfn:esd."+gen)
	}
	abstract, err := cat.Plan(requests...)
	if err != nil {
		return err
	}
	fmt.Printf("Chimera abstract DAG: %d derivations, external inputs %v\n",
		len(abstract.Order), abstract.ExternalInputs())

	// Pegasus: map onto the Grid3 catalog.
	specs := core.Grid3Sites()
	var sites []pegasus.SiteInfo
	for _, spec := range specs {
		var vos []string
		for v := range spec.Accounts {
			vos = append(vos, v)
		}
		sites = append(sites, pegasus.SiteInfo{
			Name: spec.Name, VOs: vos, MaxWall: spec.MaxWall,
			TotalCPUs: spec.CPUs, FreeCPUs: spec.CPUs,
			FreeDisk: spec.DiskBytes, OutboundIP: spec.OutboundIP,
			OwnerVO: spec.OwnerVO,
			Apps:    map[string]bool{"atlas-gce-7.0.3": true},
		})
	}
	planner := &pegasus.Planner{
		Sites: func() []pegasus.SiteInfo { return sites },
		Locate: func(lfn string) []string {
			switch lfn {
			case "lfn:pythia-card", "lfn:geometry-db", "lfn:calib-db":
				return []string{"BNL_ATLAS_Tier1"}
			}
			return nil
		},
		InputBytes:  func(string) int64 { return 50 << 20 },
		ArchiveSite: "BNL_ATLAS_Tier1",
		Policy:      policy,
	}
	concrete, err := planner.Plan(abstract, vo.USATLAS)
	if err != nil {
		return err
	}
	fmt.Printf("Pegasus concrete DAG (%s policy): %d jobs", policy, len(concrete.Order))
	for t, n := range concrete.CountByType() {
		fmt.Printf("  %s=%d", t, n)
	}
	fmt.Println()
	for _, name := range concrete.Order {
		j := concrete.Jobs[name]
		switch j.Type {
		case pegasus.Compute:
			fmt.Printf("  %-40s run %s at %s (deps %v)\n", name, j.TR.Name, j.Site, j.Parents)
		case pegasus.StageIn, pegasus.Transfer, pegasus.StageOut:
			fmt.Printf("  %-40s move %s %s → %s (%d MB)\n", name, j.LFN, j.SrcSite, j.Site, j.Bytes>>20)
		case pegasus.Register:
			fmt.Printf("  %-40s register %s in RLS\n", name, j.LFN)
		}
	}
	return nil
}
