// Package grid3 hosts the benchmark harness that regenerates every table
// and figure in the paper's evaluation (§6-§7). Each Benchmark prints the
// rows or series of its exhibit; EXPERIMENTS.md records paper-vs-measured.
//
// The shared production scenario runs once per `go test -bench` invocation
// at a scale set by GRID3_BENCH_SCALE (default 0.25; 1.0 reproduces the
// full ~290k-job campaign).
package grid3

import (
	"container/heap"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"grid3/internal/apps"
	"grid3/internal/campaign"
	"grid3/internal/core"
	"grid3/internal/failure"
	"grid3/internal/gram"
	"grid3/internal/mdviewer"
	"grid3/internal/sim"
	"grid3/internal/vo"
)

var (
	sharedOnce sync.Once
	sharedScen *core.Scenario
	sharedErr  error

	printedMu sync.Mutex
	printed   = map[string]bool{}
)

// firstRun reports true exactly once per name — the section benches guard
// their multi-line reports with it.
func firstRun(name string) bool {
	printedMu.Lock()
	defer printedMu.Unlock()
	if printed[name] {
		return false
	}
	printed[name] = true
	return true
}

// printOnce gates an exhibit's output: the benchmark framework re-invokes
// each Benchmark with growing b.N while calibrating, and the exhibit
// should appear in the log exactly once.
func printOnce(name string, emit func()) {
	printedMu.Lock()
	defer printedMu.Unlock()
	if printed[name] {
		return
	}
	printed[name] = true
	emit()
}

func benchScale() float64 {
	if v := os.Getenv("GRID3_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.25
}

// scenario returns the shared full-campaign run, building it on first use.
func scenario(b *testing.B) *core.Scenario {
	b.Helper()
	sharedOnce.Do(func() {
		start := time.Now()
		sharedScen, sharedErr = core.DefaultScenario(1, benchScale())
		if sharedErr == nil {
			fmt.Printf("# shared scenario: scale %.2f, %d jobs, %d records, built in %v\n",
				benchScale(), sharedScen.SubmittedTotal(), sharedScen.Grid.ACDC.Len(),
				time.Since(start).Round(time.Millisecond))
		}
	})
	if sharedErr != nil {
		b.Fatal(sharedErr)
	}
	return sharedScen
}

// BenchmarkFigure2IntegratedCPU regenerates Figure 2: integrated CPU-days
// by VO over the 30-day SC2003 window. Paper shape: US-CMS dominates,
// then US-ATLAS and iVDGL; LIGO/SDSS marginal.
func BenchmarkFigure2IntegratedCPU(b *testing.B) {
	s := scenario(b)
	b.ResetTimer()
	var fig map[string]float64
	for i := 0; i < b.N; i++ {
		fig = s.Figure2()
	}
	b.StopTimer()
	printOnce("FIG2", func() {
		mdviewer.BarChart(os.Stdout, "FIG2: integrated CPU usage during SC2003, by VO", "CPU-days", fig, 40)
	})
}

// BenchmarkFigure3DifferentialCPU regenerates Figure 3: time-averaged CPUs
// in use per VO per day over the same window.
func BenchmarkFigure3DifferentialCPU(b *testing.B) {
	s := scenario(b)
	b.ResetTimer()
	var plot *mdviewer.Plot
	for i := 0; i < b.N; i++ {
		plot = s.Figure3()
	}
	b.StopTimer()
	printOnce("FIG3", func() {
		totals := map[string]float64{}
		for _, series := range plot.Series {
			totals[series.Name] = series.Total() / float64(len(series.Values))
		}
		mdviewer.BarChart(os.Stdout, "FIG3: mean CPUs in simultaneous use during SC2003, by VO", "CPUs", totals, 40)
	})
}

// BenchmarkFigure4CMSBySite regenerates Figure 4: CMS cumulative CPU-days
// by site over 150 days from November 2003. Paper shape: a handful of
// dedicated CMS sites carry most of the load.
func BenchmarkFigure4CMSBySite(b *testing.B) {
	s := scenario(b)
	b.ResetTimer()
	var fig map[string]float64
	for i := 0; i < b.N; i++ {
		fig = s.Figure4()
	}
	b.StopTimer()
	printOnce("FIG4", func() {
		mdviewer.BarChart(os.Stdout, "FIG4: CMS cumulative usage by site (150 days)", "CPU-days", fig, 40)
	})
}

// BenchmarkFigure5DataConsumed regenerates Figure 5: data consumed by VO
// over the SC2003 window (~100 TB, GridFTP demonstrator dominant).
func BenchmarkFigure5DataConsumed(b *testing.B) {
	s := scenario(b)
	b.ResetTimer()
	var fig map[string]float64
	var total float64
	for i := 0; i < b.N; i++ {
		fig, total = s.Figure5()
	}
	b.StopTimer()
	printOnce("FIG5", func() {
		mdviewer.BarChart(os.Stdout,
			fmt.Sprintf("FIG5: data consumed in the 30-day window, by VO (total %.1f TB; paper ~100 TB)", total),
			"TB", fig, 40)
	})
}

// BenchmarkFigure6JobsByMonth regenerates Figure 6: jobs per month with
// the 2003 ramp-up and sustained 2004 production.
func BenchmarkFigure6JobsByMonth(b *testing.B) {
	s := scenario(b)
	b.ResetTimer()
	var months []string
	var counts []int
	for i := 0; i < b.N; i++ {
		months, counts = s.Figure6()
	}
	b.StopTimer()
	printOnce("FIG6", func() {
		mdviewer.Histogram(os.Stdout, "FIG6: jobs run on Grid3 by month", months, counts, 40)
	})
}

// BenchmarkTable1JobStatistics regenerates Table 1's eleven statistics
// rows for the seven VO classes from the ACDC warehouse.
func BenchmarkTable1JobStatistics(b *testing.B) {
	s := scenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Table1()
	}
	b.StopTimer()
	printOnce("TAB1", func() { s.WriteTable1(os.Stdout) })
}

// BenchmarkMilestones regenerates the §7 milestones scorecard.
func BenchmarkMilestones(b *testing.B) {
	s := scenario(b)
	b.ResetTimer()
	var m core.Milestones
	for i := 0; i < b.N; i++ {
		m = s.ComputeMilestones()
	}
	b.StopTimer()
	printOnce("MILE", func() { m.Write(os.Stdout) })
}

// BenchmarkSection61ATLAS reproduces the §6.1 ATLAS observations: a
// GCE-style production whose end-to-end failure rate lands near 30%, with
// ~90% of failures attributable to site problems.
func BenchmarkSection61ATLAS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fcfg := failure.Grid3Defaults()
		// The ATLAS DC period was rougher than steady state (§6.1 lists
		// disk-full, gatekeeper overload, network interruptions, and the
		// ACDC rollover as routine).
		fcfg.DiskFullMTBF = 4 * 24 * time.Hour
		fcfg.ServiceMTBF = 5 * 24 * time.Hour
		s, err := core.NewScenario(core.ScenarioConfig{
			Config:  core.Config{Seed: 61},
			Horizon: 45 * 24 * time.Hour,
			// The experiment's size is fixed by §6.1 ("more than 5000
			// jobs"), independent of the shared-scenario scale knob.
			JobScale: 1,
			Failures: fcfg,
			Classes: func() []apps.Class {
				all := apps.Grid3Classes()
				atlas, _ := apps.ClassByVO(all, vo.USATLAS)
				atlas.TotalJobs = 5000 // "More than 5000 jobs were processed"
				atlas.MonthWeights = [7]float64{0.5, 0.5, 0, 0, 0, 0, 0}
				return []apps.Class{atlas}
			}(),
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
		st := s.Grid.Stats(vo.USATLAS)
		acdcStats := s.Grid.ACDC.Stats(vo.USATLAS)
		if i == 0 && firstRun("S61") {
			fmt.Printf("S6.1 ATLAS: %d jobs processed at %d sites (paper: >5000 at 18)\n",
				st.Submitted, acdcStats.SitesUsed)
			fmt.Printf("  end-to-end failure rate: %.0f%% (paper: ~30%%)\n", 100*(1-st.Efficiency()))
			if s.Injector != nil {
				fmt.Printf("  site-problem share of injected kills: %.0f%% (paper: ~90%%)\n",
					100*s.Injector.SiteProblemFraction())
			}
			var io float64
			for _, h := range s.Grid.Network.History() {
				if h.Label == vo.USATLAS {
					io += float64(h.Bytes)
				}
			}
			fmt.Printf("  ATLAS data I/O: %.2f TB (paper: ~1.1 TB at full job count)\n", io/(1<<40))
		}
	}
}

// BenchmarkSection62CMS reproduces §6.2: CMS MOP production with long
// OSCAR jobs, ~70% completion, and group failures.
func BenchmarkSection62CMS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := core.NewScenario(core.ScenarioConfig{
			Config:   core.Config{Seed: 62},
			Horizon:  60 * 24 * time.Hour,
			JobScale: benchScale(),
			Classes: func() []apps.Class {
				all := apps.Grid3Classes()
				cms, _ := apps.ClassByVO(all, vo.USCMS)
				cms.MonthWeights = [7]float64{0.3, 0.4, 0.3, 0, 0, 0, 0}
				return []apps.Class{cms}
			}(),
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
		st := s.Grid.Stats(vo.USCMS)
		if i == 0 && firstRun("S62") {
			acdcStats := s.Grid.ACDC.Stats(vo.USCMS)
			fmt.Printf("S6.2 CMS: %d submitted, completion %.0f%% (paper: ~70%%), %d sites (paper: 11)\n",
				st.Submitted, 100*st.Efficiency(), acdcStats.SitesUsed)
			fmt.Printf("  mean runtime %.1f h (OSCAR-dominated mix; paper class mean 41.9 h)\n",
				acdcStats.AvgRuntimeHours)
		}
	}
}

// BenchmarkGatekeeperLoadModel sweeps managed-job counts and staging
// factors against the §6.4 load model: ~225 1-minute load at ~1000 jobs,
// ×2-4 under heavy staging.
func BenchmarkGatekeeperLoadModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report := i == 0 && firstRun("LOAD")
		if report {
			fmt.Println("S6.4 gatekeeper load sweep (sustained 1-min load):")
		}
		for _, tc := range []struct {
			jobs    int
			staging float64
		}{{250, 1}, {500, 1}, {1000, 1}, {1000, 2}, {1000, 4}} {
			g, err := core.New(core.Config{Seed: 64})
			if err != nil {
				b.Fatal(err)
			}
			node := g.Nodes["FNAL_CMS_Tier1"]
			node.Gatekeeper.OverloadThreshold = 1e9
			for j := 0; j < tc.jobs; j++ {
				if _, err := node.Gatekeeper.Submit(gram.Spec{
					Subject: "/DC=org/DC=doegrids/OU=People/CN=uscms user 00",
					VO:      vo.USCMS, Executable: "/bin/mc",
					Walltime: 900 * time.Hour, Runtime: 800 * time.Hour,
					StagingFactor: tc.staging,
				}); err != nil {
					b.Fatal(err)
				}
			}
			g.Eng.RunUntil(30 * time.Minute) // let the submit spike decay
			if report {
				fmt.Printf("  %5d jobs × staging %.0f → load %6.1f\n",
					tc.jobs, tc.staging, node.Gatekeeper.Load())
			}
		}
	}
}

// BenchmarkSection63TransferDemo reproduces the §6.3 sustained-transfer
// result: >2 TB/day of matrix traffic, reliably.
func BenchmarkSection63TransferDemo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := core.NewScenario(core.ScenarioConfig{
			Config:          core.Config{Seed: 63},
			Horizon:         14 * 24 * time.Hour,
			JobScale:        0.01,
			DisableFailures: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
		if i == 0 && firstRun("XFER") {
			rate := s.Demo.DailyRate(s.Grid.Eng.Now()) / float64(1<<40)
			fmt.Printf("S6.3 transfer demo: %.2f TB/day sustained over 2 weeks (target 2-3, paper actual ~4 with apps)\n", rate)
			fmt.Printf("  %d transfers, %d failed\n", s.Demo.Started(), s.Demo.Failed())
		}
	}
}

// BenchmarkAblationSRM compares raw-GridFTP stage-out against SRM space
// reservation (the §8 lesson): SRM converts mid-job disk-full failures
// into up-front deferrals, recovering wasted CPU.
func BenchmarkAblationSRM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(useSRM bool) *core.VOStats {
			fcfg := failure.Grid3Defaults()
			fcfg.DiskFullMTBF = 3 * 24 * time.Hour // stress storage
			fcfg.DiskFullDuration = 24 * time.Hour
			s, err := core.NewScenario(core.ScenarioConfig{
				Config:   core.Config{Seed: 88, UseSRM: useSRM},
				Horizon:  45 * 24 * time.Hour,
				JobScale: benchScale() / 2,
				Failures: fcfg,
				Classes: func() []apps.Class {
					all := apps.Grid3Classes()
					cms, _ := apps.ClassByVO(all, vo.USCMS)
					cms.MonthWeights = [7]float64{0.5, 0.5, 0, 0, 0, 0, 0}
					return []apps.Class{cms}
				}(),
			})
			if err != nil {
				b.Fatal(err)
			}
			s.Run()
			return s.Grid.Stats(vo.USCMS)
		}
		raw := run(false)
		srm := run(true)
		if i == 0 && firstRun("ABL-SRM") {
			fmt.Println("ABL-SRM: stage-out management ablation (CMS-like workload, stressed storage):")
			fmt.Printf("  raw GridFTP: %4d ok, %3d stage-out failures, %6.0f CPU-h wasted\n",
				raw.Completed, raw.StageOutFailures, raw.WastedCPU.Hours())
			fmt.Printf("  SRM managed: %4d ok, %3d stage-out failures, %6.0f CPU-h wasted, %d deferred up front\n",
				srm.Completed, srm.StageOutFailures, srm.WastedCPU.Hours(), srm.SRMDeferred)
		}
	}
}

// BenchmarkAblationSiteSelection compares the observed VO-affinity
// placement against uniform load-balanced matchmaking (the §6.4
// "favorite resources" observation).
func BenchmarkAblationSiteSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(disableAffinity bool) (maxShare float64, sites int) {
			s, err := core.NewScenario(core.ScenarioConfig{
				Config:   core.Config{Seed: 77, DisableAffinity: disableAffinity},
				Horizon:  45 * 24 * time.Hour,
				JobScale: benchScale() / 2,
				Classes: func() []apps.Class {
					all := apps.Grid3Classes()
					ivdgl, _ := apps.ClassByVO(all, vo.IVDGL)
					ivdgl.MonthWeights = [7]float64{0.5, 0.5, 0, 0, 0, 0, 0}
					return []apps.Class{ivdgl}
				}(),
			})
			if err != nil {
				b.Fatal(err)
			}
			s.Run()
			st := s.Grid.ACDC.Stats(vo.IVDGL)
			return st.MaxSingleSitePct, st.SitesUsed
		}
		affShare, affSites := run(false)
		uniShare, uniSites := run(true)
		if i == 0 && firstRun("ABL-FED") {
			fmt.Println("ABL-FED: site-selection ablation (iVDGL workload):")
			fmt.Printf("  VO affinity  : max single-site share %.0f%% across %d sites (paper: 88%%)\n", affShare, affSites)
			fmt.Printf("  load-balanced: max single-site share %.0f%% across %d sites\n", uniShare, uniSites)
		}
	}
}

// ---------------------------------------------------------------------------
// Engine hot path (PERF-ENGINE): the per-event cost of the discrete-event
// core, new 4-ary arena engine vs the container/heap baseline it replaced.
// scripts/bench.sh records these in BENCH_sim.json.
// ---------------------------------------------------------------------------

// benchDelays is a deterministic LCG delay stream shared by both engines so
// they execute the identical event schedule.
type benchDelays struct{ state uint64 }

func (d *benchDelays) next() time.Duration {
	d.state = d.state*6364136223846793005 + 1442695040888963407
	return time.Duration(d.state>>33%1000) * time.Millisecond
}

// BenchmarkEngineStep measures the steady-state cost of one event: a churn
// of 1024 self-rescheduling events (the job/transfer pattern) plus 64
// periodic tickers (the monitoring/negotiation pattern, riding the
// timer-wheel fast path).
func BenchmarkEngineStep(b *testing.B) {
	e := sim.NewEngine(sim.Grid3Epoch)
	delays := &benchDelays{state: 1}
	var fn func()
	fn = func() { e.Schedule(delays.next(), fn) }
	for i := 0; i < 1024; i++ {
		e.Schedule(delays.next(), fn)
	}
	for i := 0; i < 64; i++ {
		sim.NewTicker(e, time.Duration(i+1)*137*time.Millisecond, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineStepHeapBaseline runs the identical workload on the
// container/heap engine this PR replaced (one *event allocation per
// schedule, binary heap, tickers re-pushed into the main queue each tick).
func BenchmarkEngineStepHeapBaseline(b *testing.B) {
	e := &baselineEngine{}
	delays := &benchDelays{state: 1}
	var fn func()
	fn = func() { e.schedule(delays.next(), fn) }
	for i := 0; i < 1024; i++ {
		e.schedule(delays.next(), fn)
	}
	for i := 0; i < 64; i++ {
		interval := time.Duration(i+1) * 137 * time.Millisecond
		var tick func()
		tick = func() { e.schedule(interval, tick) }
		e.schedule(interval, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.step()
	}
}

// BenchmarkEngineCancel measures cancellation churn: schedule-then-cancel
// pairs with live traffic in between, the batch-system preemption pattern
// that exercises lazy discard and compaction.
func BenchmarkEngineCancel(b *testing.B) {
	e := sim.NewEngine(sim.Grid3Epoch)
	delays := &benchDelays{state: 9}
	var fn func()
	fn = func() { e.Schedule(delays.next(), fn) }
	for i := 0; i < 256; i++ {
		e.Schedule(delays.next(), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(delays.next(), func() {})
		ev.Cancel()
		e.Step()
	}
}

// baselineEngine reproduces the pre-overhaul engine for comparison:
// container/heap over per-event allocations, ordered by (time, seq).
type baselineEngine struct {
	now time.Duration
	seq uint64
	q   baselineQueue
}

type baselineEvent struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int
}

func (e *baselineEngine) schedule(d time.Duration, fn func()) *baselineEvent {
	e.seq++
	ev := &baselineEvent{at: e.now + d, seq: e.seq, fn: fn}
	heap.Push(&e.q, ev)
	return ev
}

func (e *baselineEngine) step() bool {
	if e.q.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.q).(*baselineEvent)
	e.now = ev.at
	ev.fn()
	return true
}

type baselineQueue []*baselineEvent

func (q baselineQueue) Len() int { return len(q) }
func (q baselineQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q baselineQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *baselineQueue) Push(x any) {
	ev := x.(*baselineEvent)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *baselineQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// BenchmarkScenarioDay measures end-to-end campaign throughput: one full
// simulated production day (assembly included) at 5% workload scale.
func BenchmarkScenarioDay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := core.NewScenario(core.ScenarioConfig{
			Config:   core.Config{Seed: 1},
			Horizon:  24 * time.Hour,
			JobScale: 0.05,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
		if i == 0 && firstRun("SCEN-DAY") {
			fmt.Printf("# scenario day: %d jobs, %d events\n",
				s.SubmittedTotal(), s.Grid.Eng.Processed())
		}
	}
}

// BenchmarkSweep measures the parallel campaign runner: four seeds fanned
// across GOMAXPROCS workers, with per-seed output verified byte-identical
// to a serial run of the same seeds. The parallel-speedup metric is
// wall-clock serial/parallel; on a multi-core box it approaches
// min(4, GOMAXPROCS).
func BenchmarkSweep(b *testing.B) {
	cfg := core.ScenarioConfig{Horizon: 6 * 24 * time.Hour, JobScale: 0.01}
	runs := campaign.Seeds(1, 4, 0.01, cfg)
	var parallel *campaign.Report
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parallel, err = campaign.Sweep(runs, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	serial, err := campaign.Sweep(runs, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := range runs {
		p, s := parallel.Runs[i], serial.Runs[i]
		if p.Table1Text != s.Table1Text || p.MilestonesText != s.MilestonesText {
			b.Fatalf("seed %d: parallel output diverged from serial", p.Seed)
		}
	}
	speedup := float64(serial.Elapsed) / float64(parallel.Elapsed)
	b.ReportMetric(speedup, "parallel-speedup")
	b.ReportMetric(float64(parallel.Workers), "workers")
	printOnce("SWEEP", func() {
		fmt.Printf("# sweep: 4 seeds on %d workers (GOMAXPROCS %d), parallel %v vs serial %v — %.2fx, outputs bit-identical\n",
			parallel.Workers, runtime.GOMAXPROCS(0),
			parallel.Elapsed.Round(time.Millisecond), serial.Elapsed.Round(time.Millisecond), speedup)
	})
}

// BenchmarkShardedDay measures the sharded engine at the scaled testbed's
// target point: a 1000-site simulated day with matchmaking fanned across 4
// region workers. The parallel-speedup metric is work-parallelism from the
// shard stats — summed per-window scan work over the per-window critical
// path — so it measures the partition's balance even on a single-core host
// where wall clock cannot show overlap.
func BenchmarkShardedDay(b *testing.B) {
	const shards = 4
	var speedup float64
	for i := 0; i < b.N; i++ {
		s, err := core.NewScenario(core.ScenarioConfig{
			Config:   core.Config{Seed: 1, TestbedSites: 1000, Shards: shards},
			Horizon:  24 * time.Hour,
			JobScale: 0.1,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
		st := s.Grid.ShardStats()
		if st.Windows == 0 {
			b.Fatal("sharded run recorded no evaluation windows")
		}
		speedup = st.Speedup()
		if i == 0 && firstRun("SHARD-DAY") {
			fmt.Printf("# sharded day: 1000 sites, %d shards, %d windows, %.2fx work-parallelism\n",
				shards, st.Windows, speedup)
		}
	}
	b.ReportMetric(speedup, "parallel-speedup")
	b.ReportMetric(shards, "shards")
}
