#!/bin/sh
# Run the service demo and record it in BENCH_serve.json: start grid3d on a
# local port, drive it with the grid3load open-loop generator (multi-VO mix,
# diurnal cycle, flash crowd), and keep the resulting ingress scorecard —
# sustained req/s, latency quantiles, goodput under overload — as the serve
# evidence this repo tracks across PRs.
#
# Runs from any directory: ./scripts/serve-demo.sh [out.json]
set -eu
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_serve.json}
ADDR=127.0.0.1:18080
TMP=$(mktemp -d)
trap 'kill "$DPID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/grid3d" ./cmd/grid3d
go build -o "$TMP/grid3load" ./cmd/grid3load

"$TMP/grid3d" -addr "$ADDR" -sites 10 -scale 0.05 -days 30 -pace 3600 \
    >"$TMP/grid3d.log" 2>&1 &
DPID=$!

# Wait for the daemon to answer its liveness probe.
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done
curl -sf "http://$ADDR/healthz" >/dev/null

"$TMP/grid3load" -target "http://$ADDR" -rps 150 -duration 20s -seed 1 \
    -out "$OUT"

kill -TERM "$DPID"
wait "$DPID" || true
tail -n 1 "$TMP/grid3d.log"

echo
echo "wrote $OUT"
