#!/bin/sh
# Run a small reference data sweep and record it in BENCH_data.json: the
# data-plane evidence this repo tracks across PRs — TB/day with the raw
# GridFTP baseline vs the managed plane (SRM lifecycle, transfer doors,
# load-ranked replicas), plus queueing and SRM lifecycle activity per seed.
#
# Run from the repo root: ./scripts/data-demo.sh [out.json]
set -eu

OUT=${1:-BENCH_data.json}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/grid3sim" ./cmd/grid3sim
"$TMP/grid3sim" -data-sweep -seeds 1,2,3 -scale 0.05 -days 30 -doors 4 \
	-json-out "$OUT"

echo
echo "wrote $OUT"
