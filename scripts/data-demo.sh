#!/bin/sh
# Thin wrapper: the data-plane sweep is declared in experiments/core.json
# now. This runs just its "data" experiment and refreshes BENCH_data.json
# in place; run the whole grid (plus the CSV and EXPERIMENTS.md
# summaries) with:
#
#   go run ./cmd/grid3exp run experiments/core.json
#
# Runs from any directory: ./scripts/data-demo.sh
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/grid3exp run experiments/core.json -only data
