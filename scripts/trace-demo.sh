#!/bin/sh
# Trace a one-day production run and pretty-print the ten slowest spans.
# The JSONL dump has a fixed key order and one span per line, so awk is
# enough — no JSON parser needed.
# Runs from any directory: ./scripts/trace-demo.sh [seed]
set -eu
cd "$(dirname "$0")/.."

seed=${1:-1}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

go build -o "$tmp/grid3sim" ./cmd/grid3sim
"$tmp/grid3sim" -seed "$seed" -days 1 -quiet \
	-trace-out "$tmp/trace.jsonl" -metrics-out "$tmp/metrics.txt"

total=$(wc -l <"$tmp/trace.jsonl")
echo
echo "== $total spans recorded; ten slowest (seed $seed, one day) =="
printf '%-10s %-26s %-20s %-24s %10s\n' KIND JOB SITE ERR 'DUR(s)'
# Open spans carry dur_s of -1; the character class below skips them.
awk '
	function f(key,    v) {
		v = ""
		if (match($0, "\"" key "\":\"[^\"]*\"")) {
			v = substr($0, RSTART, RLENGTH)
			sub("\"" key "\":\"", "", v)
			sub("\"$", "", v)
		}
		return v
	}
	match($0, /"dur_s":[0-9.]+/) {
		dur = substr($0, RSTART + 8, RLENGTH - 8)
		printf "%s\t%s\t%s\t%s\t%s\n", dur, f("kind"), f("job"), f("site"), f("err")
	}
' "$tmp/trace.jsonl" |
	sort -t '	' -k1,1gr | head -10 |
	awk -F '\t' '{ printf "%-10s %-26s %-20s %-24s %10.1f\n", $2, $3, $4, $5, $1 }'

echo
echo "== Metrics snapshot (head) =="
head -30 "$tmp/metrics.txt"
