#!/bin/sh
# Full verification gate: build, vet, formatting, the complete test suite,
# and the race detector over the concurrency surfaces (the parallel sweep
# runner, the shared metrics registry, the health monitor, the sharded
# event engine and eval pool, the serve ingress boundary, the checkpoint
# store and its concurrent warm-start consumers, the ingest batching
# pipeline).
#
# CI runs this exact script (.github/workflows/ci.yml), so the local gate
# and the hosted one cannot drift. Runs from any directory:
# ./scripts/verify.sh
set -eu
cd "$(dirname "$0")/.."

echo '== go build'
go build ./...

echo '== go vet'
go vet ./...

echo '== gofmt'
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: these files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo '== go test'
go test ./...

echo '== go test -race (concurrency surfaces)'
go test -race ./internal/obs/... ./internal/campaign/... ./internal/health/... \
    ./internal/sim/... ./internal/serve/... ./internal/condorg/... \
    ./internal/checkpoint/... ./internal/ingest/...

echo 'verify: OK'
