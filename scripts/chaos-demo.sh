#!/bin/sh
# Run a small reference chaos sweep and record it in BENCH_chaos.json:
# the fault-tolerance curve this repo tracks across PRs (goodput
# retention, baseline vs closed-loop recovery, and per-failure-kind
# MTTD/MTTR at each intensity).
#
# Run from the repo root: ./scripts/chaos-demo.sh [out.json]
set -eu

OUT=${1:-BENCH_chaos.json}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/grid3sim" ./cmd/grid3sim
"$TMP/grid3sim" -chaos 1,2,4 -seeds 1,2 -scale 0.05 -days 1 \
	-json-out "$OUT"

echo
echo "wrote $OUT"
