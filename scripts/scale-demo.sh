#!/bin/sh
# Regenerate BENCH_scale.json: the testbed scale curve this repo tracks
# across PRs — wall time, event throughput, and allocation volume for one
# simulated production day at 27 (the historical catalog), 100, 300, and
# 1000 sites. With -shards 4 every (sites, seed) point is measured twice,
# serial then sharded, so each sharded point's work-parallelism has its
# serial reference beside it. Points run serially so the per-point
# allocation deltas are clean; expect a few minutes of wall time.
#
# Run from the repo root: ./scripts/scale-demo.sh [out.json]
set -eu

OUT=${1:-BENCH_scale.json}

go build -o /tmp/grid3sim-scale ./cmd/grid3sim
/tmp/grid3sim-scale -scale-sweep 27,100,300,1000 -seeds 1,2 -days 1 -shards 4 -json-out "$OUT"

if [ ! -s "$OUT" ]; then
    echo "scale-demo: $OUT is empty" >&2
    exit 1
fi
echo "wrote $OUT"
