#!/bin/sh
# Thin wrapper: the testbed scale sweep is declared in
# experiments/core.json now. This runs just its "scale" experiment and
# refreshes BENCH_scale.json in place (points run serially for clean
# allocation deltas; expect a few minutes). Run the whole grid with:
#
#   go run ./cmd/grid3exp run experiments/core.json
#
# Runs from any directory: ./scripts/scale-demo.sh
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/grid3exp run experiments/core.json -only scale
