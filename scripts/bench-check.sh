#!/bin/sh
# Benchmark regression check: rerun the tracked hot-path benchmarks at a
# short benchtime and compare against the checked-in BENCH_sim.json
# baselines. Fails when ns/op regresses more than the threshold or when
# allocs/op grows at all (the hot path is supposed to stay allocation-flat).
#
# Baseline values are read with jq path lookups that fail loudly when a
# key is missing or null — a renamed or dropped field is a broken gate,
# not a silently skipped check.
#
# Short benchtimes are noisy, so CI runs this as a non-blocking job: a red
# check is a prompt to rerun scripts/bench.sh on quiet hardware, not proof
# of a regression. Runs from any directory: ./scripts/bench-check.sh
set -eu
cd "$(dirname "$0")/.."

BASE=${1:-BENCH_sim.json}
DATA_BASE=${2:-BENCH_data.json}
SERVE_BASE=${3:-BENCH_serve.json}
INGEST_BASE=${4:-BENCH_ingest.json}
# ns/op may regress up to 30% before this trips (short-run noise margin).
NS_SLACK=1.3
# allocs/op must stay flat, modulo a small absolute allowance: the short
# CI rerun often completes a single iteration, so one-time setup
# allocations amortize less than in the longer checked-in baseline run.
ALLOC_SLACK=64
# The §7 milestone floor: managed runs must sustain at least 2 TB/day.
TB_FLOOR=2.0
# Ingestion floor: the checked-in ingest sweep must show the batched
# monitoring path sustaining at least this many metric events per second
# (advisory — the checked-in run clears it by an order of magnitude, so a
# trip means the pipeline collapsed, not that the runner was slow).
EVENTS_FLOOR=1000000
# Ingress floor: the checked-in serve bench must show the daemon sustaining
# at least this many good requests per second (well under what any modern
# machine produces; this catches a collapsed ingress path, not slow iron).
RPS_FLOOR=50
# Sharded-engine floor: the checked-in BenchmarkShardedDay entry must show
# at least this much work-parallelism at 4 shards on the 1000-site day.
# Work-parallelism is summed scan work over the critical path — a partition
# balance measure, deterministic for a given seed, so a dip means the
# region chunking regressed, not that the runner was noisy.
PSPEED_FLOOR=3.0
BENCHES='BenchmarkEngineStep$|BenchmarkScenarioDay$'

command -v jq >/dev/null 2>&1 || {
    echo "bench-check: jq is required (baseline lookups)" >&2
    exit 1
}

if [ ! -f "$BASE" ]; then
    echo "bench-check: baseline $BASE not found" >&2
    exit 1
fi

# jqget FILE FILTER LABEL — exact path lookup; a missing or null value is
# a loud failure naming the key, never an empty string.
jqget() {
    if ! jq -er "$2" "$1"; then
        echo "bench-check: $3 missing from $1" >&2
        return 1
    fi
}

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$BENCHES" -benchmem -benchtime 0.2s . > "$RAW" 2>&1 \
    || { cat "$RAW"; exit 1; }
cat "$RAW"

if ! grep -q '^Benchmark' "$RAW"; then
    echo "bench-check: no benchmark output produced" >&2
    exit 1
fi

status=0
for name in BenchmarkEngineStep BenchmarkScenarioDay; do
    base_ns=$(jqget "$BASE" "first(.benchmarks[] | select(.name == \"$name\") | .ns_per_op)" "$name ns_per_op") || { status=1; continue; }
    base_allocs=$(jqget "$BASE" "first(.benchmarks[] | select(.name == \"$name\") | .allocs_per_op)" "$name allocs_per_op") || { status=1; continue; }
    current=$(awk -v name="$name" '
        $1 ~ "^" name "(-[0-9]+)?$" {
            ns = ""; allocs = ""
            for (i = 2; i <= NF; i++) {
                if ($(i+1) == "ns/op")     ns = $i
                if ($(i+1) == "allocs/op") allocs = $i
            }
            print ns, allocs
            exit
        }
    ' "$RAW")
    if [ -z "$current" ]; then
        echo "bench-check: $name did not run" >&2
        status=1
        continue
    fi
    verdict=$(echo "$base_ns $base_allocs $current" | awk -v slack="$NS_SLACK" -v aslack="$ALLOC_SLACK" '{
        base_ns = $1; base_allocs = $2; ns = $3; allocs = $4
        if (ns > base_ns * slack)
            printf "FAIL ns/op %s vs baseline %s (limit %.0f)\n", ns, base_ns, base_ns * slack
        else if (allocs != "" && allocs + 0 > base_allocs + aslack)
            printf "FAIL allocs/op %s vs baseline %s (+%d allowance)\n", allocs, base_allocs, aslack
        else
            printf "ok ns/op %s (baseline %s), allocs/op %s (baseline %s)\n", ns, base_ns, allocs, base_allocs
    }')
    echo "bench-check: $name: $verdict"
    case "$verdict" in
        FAIL*) status=1 ;;
    esac
done

# Sharded-engine check: the checked-in sharded-day entry must clear the
# work-parallelism floor. Read from the baseline file — the number is a
# deterministic property of the partition, so no rerun is needed.
if pspeed=$(jqget "$BASE" '[.benchmarks[] | select(.name == "BenchmarkShardedDay")][0].parallel_speedup' "BenchmarkShardedDay parallel_speedup"); then
    verdict=$(echo "$pspeed" | awk -v floor="$PSPEED_FLOOR" '{
        if ($1 + 0 < floor + 0)
            printf "FAIL work-parallelism %.2fx below the %.1fx floor\n", $1, floor
        else
            printf "ok work-parallelism %.2fx (floor %.1fx)\n", $1, floor
    }')
    echo "bench-check: sharded day: $verdict"
    case "$verdict" in
        FAIL*) status=1 ;;
    esac
else
    status=1
fi

# Data-plane milestone check: the checked-in data sweep must show the
# managed plane sustaining the §7 target across every seed (the minimum,
# not the mean — one bad seed is a regression).
if [ -f "$DATA_BASE" ]; then
    if tb_min=$(jqget "$DATA_BASE" '.managed_tb_per_day_min' "managed_tb_per_day_min"); then
        verdict=$(echo "$tb_min" | awk -v floor="$TB_FLOOR" '{
            if ($1 + 0 < floor + 0)
                printf "FAIL managed min %.2f TB/day below the %.1f TB/day milestone\n", $1, floor
            else
                printf "ok managed min %.2f TB/day (floor %.1f)\n", $1, floor
        }')
        echo "bench-check: data sweep: $verdict"
        case "$verdict" in
            FAIL*) status=1 ;;
        esac
    else
        status=1
    fi
else
    echo "bench-check: $DATA_BASE not found, skipping the data-plane check" >&2
fi

# Serve bench check: the checked-in grid3d load report must show the
# ingress boundary sustaining a sane request rate with its goodput intact.
if [ -f "$SERVE_BASE" ]; then
    rps=$(jqget "$SERVE_BASE" '.sustained_rps' "sustained_rps") || status=1
    goodput=$(jqget "$SERVE_BASE" '.goodput' "goodput") || status=1
    if [ -n "${rps:-}" ] && [ -n "${goodput:-}" ]; then
        verdict=$(echo "$rps $goodput" | awk -v floor="$RPS_FLOOR" '{
            if ($1 + 0 < floor + 0)
                printf "FAIL sustained %.1f req/s below the %.0f req/s floor\n", $1, floor
            else if ($2 + 0 < 0.9)
                printf "FAIL goodput %.3f below 0.9\n", $2
            else
                printf "ok sustained %.1f req/s (floor %.0f), goodput %.3f\n", $1, floor, $2
        }')
        echo "bench-check: serve bench: $verdict"
        case "$verdict" in
            FAIL*) status=1 ;;
        esac
    fi
else
    echo "bench-check: $SERVE_BASE not found, skipping the serve check" >&2
fi

# Ingestion check: the checked-in ingest sweep must show batched
# throughput over the floor with its usage-ledger audit fully verified.
if [ -f "$INGEST_BASE" ]; then
    if eps=$(jqget "$INGEST_BASE" '.best_events_per_second' "best_events_per_second"); then
        verdict=$(echo "$eps" | awk -v floor="$EVENTS_FLOOR" '{
            if ($1 + 0 < floor + 0)
                printf "FAIL batched ingest %.0f events/s below the %d events/s floor\n", $1, floor
            else
                printf "ok batched ingest %.0f events/s (floor %d)\n", $1, floor
        }')
        echo "bench-check: ingest sweep: $verdict"
        case "$verdict" in
            FAIL*) status=1 ;;
        esac
        # tostring keeps `false` distinguishable from a missing key under
        # jq -e (which treats a bare false output as failure).
        audited=$(jqget "$INGEST_BASE" 'if has("audit_verified") then .audit_verified | tostring else empty end' "audit_verified") || status=1
        if [ -n "${audited:-}" ] && [ "$audited" != "true" ]; then
            echo "bench-check: ingest sweep: FAIL audit_verified is $audited in $INGEST_BASE" >&2
            status=1
        fi
    else
        status=1
    fi
else
    echo "bench-check: $INGEST_BASE not found, skipping the ingest check" >&2
fi

exit $status
