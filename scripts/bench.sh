#!/bin/sh
# Regenerate BENCH_sim.json: the engine hot-path and campaign-runner
# numbers this repo tracks across PRs (ns/op + allocs/op for the event
# engine vs its container/heap baseline, scenario-day throughput, the
# parallel sweep's speedup with its bit-identical-output check, and the
# sharded engine's work-parallelism on a 1000-site day at -shards 4).
#
# Runs from any directory: ./scripts/bench.sh
# Paper-exhibit benches (figures/tables) are separate:
#   go test -bench=. -benchtime=1x .
set -eu
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_sim.json}
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# No tee: piping the test run would hide its exit status under set -e
# (dash has no pipefail), so capture to the temp file and replay it.
go test -run '^$' \
    -bench 'BenchmarkEngineStep$|BenchmarkEngineStepHeapBaseline|BenchmarkEngineCancel|BenchmarkScenarioDay|BenchmarkSweep|BenchmarkShardedDay' \
    -benchmem -benchtime 2s . > "$RAW" 2>&1 || { cat "$RAW"; exit 1; }
cat "$RAW"

if ! grep -q '^Benchmark' "$RAW"; then
    echo "bench.sh: no benchmark output produced, refusing to write an empty $OUT" >&2
    exit 1
fi

{
    echo '{'
    printf '  "generated_by": "scripts/bench.sh",\n'
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "gomaxprocs": %s,\n' "${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)}"
    printf '  "benchmarks": [\n'
    awk '
        /^Benchmark/ {
            line = $0
            name = $1; sub(/-[0-9]+$/, "", name)
            ns = ""; bytes = ""; allocs = ""; extra = ""
            for (i = 2; i <= NF; i++) {
                if ($(i+1) == "ns/op")     ns = $i
                if ($(i+1) == "B/op")      bytes = $i
                if ($(i+1) == "allocs/op") allocs = $i
                if ($(i+1) == "parallel-speedup") extra = extra sprintf(", \"parallel_speedup\": %s", $i)
                if ($(i+1) == "workers")   extra = extra sprintf(", \"workers\": %s", $i)
                if ($(i+1) == "shards")    extra = extra sprintf(", \"shards\": %s", $i)
            }
            if (n++) printf ",\n"
            printf "    {\"name\": \"%s\", \"iterations\": %s", name, $2
            if (ns != "")     printf ", \"ns_per_op\": %s", ns
            if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
            if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
            printf "%s}", extra
        }
        END { printf "\n" }
    ' "$RAW"
    printf '  ]\n'
    echo '}'
} > "$OUT"
echo "wrote $OUT"
