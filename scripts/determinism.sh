#!/bin/sh
# Determinism gate: the repo's core property is same seed, same run, bit
# for bit. Each leg below runs grid3sim twice (or once per configuration
# that must be output-invisible) and diffs the results, ignoring only the
# first output line, which carries wall-clock timing.
#
# CI runs this exact script (.github/workflows/ci.yml), so the local gate
# and the hosted one cannot drift. Runs from any directory:
# ./scripts/determinism.sh
#
# Legs:
#   1. default configuration, two identical invocations
#   2. fault-management loop armed (-health -recovery)
#   3. scaled 300-site testbed
#   4. managed data plane (-srm -doors -cleanup -replica-rank)
#   5. sharded engine (-shards 4) matches the serial run
#   6. checkpoint/restore matches straight-through, corrupt snapshots
#      are refused
#   7. ingest batching (-ingest-batch) matches the per-event run
set -eu
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

SIM="$WORK/grid3sim"
go build -o "$SIM" ./cmd/grid3sim

# same A B — diff two run outputs, ignoring line 1 (wall-clock timing).
same() {
    tail -n +2 "$1" > "$1.body"
    tail -n +2 "$2" > "$2.body"
    diff "$1.body" "$2.body"
}

echo '== determinism: default configuration'
"$SIM" -days 20 -scale 0.1 -seed 7 > "$WORK/run-a.txt"
"$SIM" -days 20 -scale 0.1 -seed 7 > "$WORK/run-b.txt"
same "$WORK/run-a.txt" "$WORK/run-b.txt"

echo '== determinism: fault-management loop armed'
"$SIM" -days 20 -scale 0.1 -seed 7 -health -recovery > "$WORK/run-c.txt"
"$SIM" -days 20 -scale 0.1 -seed 7 -health -recovery > "$WORK/run-d.txt"
same "$WORK/run-c.txt" "$WORK/run-d.txt"

echo '== determinism: scaled testbed'
"$SIM" -sites 300 -days 3 -scale 0.1 -seed 7 -quiet > "$WORK/run-e.txt"
"$SIM" -sites 300 -days 3 -scale 0.1 -seed 7 -quiet > "$WORK/run-f.txt"
same "$WORK/run-e.txt" "$WORK/run-f.txt"

echo '== determinism: managed data plane'
"$SIM" -days 10 -scale 0.1 -seed 7 -srm -doors 4 -cleanup -replica-rank > "$WORK/run-g.txt"
"$SIM" -days 10 -scale 0.1 -seed 7 -srm -doors 4 -cleanup -replica-rank > "$WORK/run-h.txt"
same "$WORK/run-g.txt" "$WORK/run-h.txt"

echo '== determinism: sharded engine matches serial'
"$SIM" -days 20 -scale 0.1 -seed 7 > "$WORK/run-serial.txt"
"$SIM" -days 20 -scale 0.1 -seed 7 -shards 4 > "$WORK/run-sharded.txt"
same "$WORK/run-serial.txt" "$WORK/run-sharded.txt"

echo '== determinism: checkpoint/restore matches straight-through'
"$SIM" -days 20 -scale 0.1 -seed 7 > "$WORK/run-straight.txt"
# Capturing a snapshot mid-run is a pure read: the checkpointing run's
# own output must already match the straight run.
"$SIM" -days 20 -scale 0.1 -seed 7 -checkpoint-at 240h -checkpoint-out "$WORK/snap.g3" > "$WORK/run-ckpt.txt"
same "$WORK/run-straight.txt" "$WORK/run-ckpt.txt"
# Restoring replays the recorded history and continues; serial and
# sharded restores both land on the straight run's bytes.
"$SIM" -restore "$WORK/snap.g3" > "$WORK/run-restored.txt"
same "$WORK/run-straight.txt" "$WORK/run-restored.txt"
"$SIM" -restore "$WORK/snap.g3" -shards 4 > "$WORK/run-restored-sharded.txt"
same "$WORK/run-straight.txt" "$WORK/run-restored-sharded.txt"
# A flipped byte anywhere in the snapshot must refuse to load.
dd if=/dev/zero of="$WORK/snap.g3" bs=1 count=1 seek=100 conv=notrunc 2>/dev/null
if "$SIM" -restore "$WORK/snap.g3" > /dev/null 2> "$WORK/corrupt.err"; then
    echo "corrupted snapshot restored" >&2
    exit 1
fi
grep -q "checkpoint" "$WORK/corrupt.err"

echo '== determinism: ingest batching matches per-event'
# The batcher reorders commit timing, never content: a batched run must
# reproduce the per-event run byte for byte, at any batch size.
"$SIM" -days 20 -scale 0.1 -seed 7 > "$WORK/run-plain.txt"
"$SIM" -days 20 -scale 0.1 -seed 7 -ingest-batch 256 > "$WORK/run-batched.txt"
same "$WORK/run-plain.txt" "$WORK/run-batched.txt"
"$SIM" -days 20 -scale 0.1 -seed 7 -ingest-batch 32 -ingest-window 30m > "$WORK/run-batched-win.txt"
same "$WORK/run-plain.txt" "$WORK/run-batched-win.txt"

echo 'determinism: OK'
