module grid3

go 1.22
