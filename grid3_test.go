package grid3

import (
	"testing"
	"time"
)

// TestPublicAPI exercises the façade end-to-end: assemble, submit, run,
// observe — the README quickstart, as a test.
func TestPublicAPI(t *testing.T) {
	g, err := New(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(Grid3Sites()) != 27 {
		t.Fatal("catalog size")
	}
	g.SubmitJob(Request{
		ID: "api-1", VO: "usatlas",
		User:     "/DC=org/DC=doegrids/OU=People/CN=usatlas user 00",
		Runtime:  time.Hour,
		Walltime: 2 * time.Hour,
	})
	g.Eng.RunUntil(6 * time.Hour)
	if g.Stats("usatlas").Completed != 1 {
		t.Fatalf("stats = %+v", g.Stats("usatlas"))
	}
}

func TestPublicScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario in -short mode")
	}
	s, err := NewScenario(ScenarioConfig{
		Config:   Config{Seed: 2},
		Horizon:  10 * 24 * time.Hour,
		JobScale: 0.005,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	m := s.ComputeMilestones()
	if m.Users != 102 || m.CPUs < 2500 {
		t.Fatalf("milestones = %+v", m)
	}
}
