package grid3

import (
	"io"
	"strings"
	"testing"
	"time"

	"grid3/internal/obs"
)

// TestPublicAPI exercises the façade end-to-end: assemble, submit, run,
// observe — the README quickstart, as a test.
func TestPublicAPI(t *testing.T) {
	g, err := New(WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(Grid3Sites()) != 27 {
		t.Fatal("catalog size")
	}
	g.SubmitJob(Request{
		ID: "api-1", VO: "usatlas",
		User:     "/DC=org/DC=doegrids/OU=People/CN=usatlas user 00",
		Runtime:  time.Hour,
		Walltime: 2 * time.Hour,
	})
	g.Eng.RunUntil(6 * time.Hour)
	if g.Stats("usatlas").Completed != 1 {
		t.Fatalf("stats = %+v", g.Stats("usatlas"))
	}
}

// TestOptionsCompose pins the functional-options contract: options apply in
// order, later options win, and the struct escape hatches reproduce the
// same configuration as the equivalent option chain.
func TestOptionsCompose(t *testing.T) {
	cfg := buildConfig([]Option{
		WithSeed(7),
		WithSRM(),
		WithMonitorInterval(5 * time.Minute),
		WithNegotiationInterval(10 * time.Minute),
		WithoutAffinity(),
		WithHorizon(24 * time.Hour),
		WithJobScale(0.5),
		WithoutFailures(),
		WithoutTransferDemo(),
	})
	if cfg.Config.Seed != 7 || !cfg.Config.UseSRM || !cfg.Config.DisableAffinity ||
		cfg.Config.MonitorInterval != 5*time.Minute ||
		cfg.Config.NegotiationInterval != 10*time.Minute {
		t.Fatalf("grid options not applied: %+v", cfg.Config)
	}
	if cfg.Horizon != 24*time.Hour || cfg.JobScale != 0.5 || !cfg.DisableFailures ||
		!cfg.DisableTransferDemo {
		t.Fatalf("scenario options not applied: %+v", cfg)
	}

	// Later options override earlier ones.
	if got := buildConfig([]Option{WithSeed(1), WithSeed(2)}); got.Config.Seed != 2 {
		t.Fatalf("later WithSeed lost: %d", got.Config.Seed)
	}

	// The escape hatches replace wholesale, then compose with later options.
	hatch := buildConfig([]Option{
		WithScenarioConfig(ScenarioConfig{Config: Config{Seed: 9}, JobScale: 0.25}),
		WithSRM(),
	})
	if hatch.Config.Seed != 9 || hatch.JobScale != 0.25 || !hatch.Config.UseSRM {
		t.Fatalf("escape hatch broken: %+v", hatch)
	}
	gridHatch := buildConfig([]Option{WithConfig(Config{Seed: 3, UseSRM: true})})
	if gridHatch.Config.Seed != 3 || !gridHatch.Config.UseSRM {
		t.Fatalf("WithConfig broken: %+v", gridHatch.Config)
	}
}

func TestPublicScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario in -short mode")
	}
	s, err := NewScenario(
		WithSeed(2),
		WithHorizon(10*24*time.Hour),
		WithJobScale(0.005),
	)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	m := s.ComputeMilestones()
	if m.Users != 102 || m.CPUs < 2500 {
		t.Fatalf("milestones = %+v", m)
	}
}

// TestRunScenarioResultView checks the thin Result view against the
// underlying scenario: same exhibits, no internal types needed.
func TestRunScenarioResultView(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario in -short mode")
	}
	r, err := RunScenario(3, 0.005, WithHorizon(8*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	m := r.Milestones()
	if m.Users != 102 || m.CPUs < 2500 {
		t.Fatalf("milestones view = %+v", m)
	}
	if r.Submitted() <= 0 || r.Records() <= 0 || r.EventsProcessed() == 0 {
		t.Fatalf("counters: submitted %d records %d events %d",
			r.Submitted(), r.Records(), r.EventsProcessed())
	}
	var buf strings.Builder
	r.WriteTable1(&buf)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("WriteTable1 output missing header")
	}
	buf.Reset()
	r.WriteMilestones(&buf)
	if !strings.Contains(buf.String(), "milestones") {
		t.Fatal("WriteMilestones output missing header")
	}
	if r.Scenario() == nil {
		t.Fatal("Scenario trapdoor is nil")
	}
}

// TestPublicSweep drives the multi-seed façade: distinct seeds, aggregated
// stats, and per-seed exhibits retrievable by seed.
func TestPublicSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	rep, err := Sweep([]int64{11, 12}, 0.005, WithHorizon(8*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	seeds := rep.Seeds()
	if len(seeds) != 2 || seeds[0] != 11 || seeds[1] != 12 {
		t.Fatalf("seeds = %v", seeds)
	}
	t11, ok := rep.Table1Text(11)
	if !ok || !strings.Contains(t11, "Table 1") {
		t.Fatalf("Table1Text(11): ok=%v", ok)
	}
	if _, ok := rep.Table1Text(99); ok {
		t.Fatal("Table1Text(99) found a seed that never ran")
	}
	m, ok := rep.Milestones(12)
	if !ok || m.Users != 102 {
		t.Fatalf("Milestones(12) = %+v, ok=%v", m, ok)
	}
	agg := rep.Aggregate()
	if agg.JobsCompleted.Min <= 0 || agg.JobsCompleted.Min > agg.JobsCompleted.Max {
		t.Fatalf("aggregate = %+v", agg.JobsCompleted)
	}
	var buf strings.Builder
	rep.Write(&buf)
	if !strings.Contains(buf.String(), "Campaign sweep: 2 seeds") {
		t.Fatalf("sweep report:\n%s", buf.String())
	}
}

// TestObservabilityOptions pins the option semantics: sinks imply the
// layer, and WithoutObservability wins over earlier enables. (NetLogger
// output comes from WithTracer(NetLoggerSink(w)).)
func TestObservabilityOptions(t *testing.T) {
	cfg := buildConfig([]Option{
		WithTracer(JSONLSink(io.Discard)),
		WithMetricsSink(TextMetricsSink(io.Discard)),
	})
	if !cfg.Config.EnableObservability || len(cfg.TraceSinks) != 1 || len(cfg.MetricsSinks) != 1 {
		t.Fatalf("sink options did not enable observability: %+v", cfg)
	}
	cfg = buildConfig([]Option{
		WithObservability(),
		WithTracer(NetLoggerSink(io.Discard)),
		WithoutObservability(),
	})
	if cfg.Config.EnableObservability || cfg.TraceSinks != nil || cfg.MetricsSinks != nil {
		t.Fatalf("WithoutObservability did not win: %+v", cfg)
	}
}

// TestTracedRunMatchesUntraced is the determinism property: the same seed
// produces byte-identical Table 1 and milestone exhibits whether the run is
// traced or not — the observability layer records the simulation without
// steering it.
func TestTracedRunMatchesUntraced(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario in -short mode")
	}
	exhibits := func(r *Result) (string, string) {
		var t1, ms strings.Builder
		r.WriteTable1(&t1)
		r.WriteMilestones(&ms)
		return t1.String(), ms.String()
	}
	plain, err := RunScenario(5, 0.005, WithHorizon(8*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	traced, err := RunScenario(5, 0.005, WithHorizon(8*24*time.Hour), WithObservability())
	if err != nil {
		t.Fatal(err)
	}
	plainT1, plainMS := exhibits(plain)
	tracedT1, tracedMS := exhibits(traced)
	if plainT1 != tracedT1 {
		t.Fatalf("Table 1 diverged with tracing on:\n--- untraced ---\n%s--- traced ---\n%s", plainT1, tracedT1)
	}
	if plainMS != tracedMS {
		t.Fatalf("milestones diverged with tracing on:\n--- untraced ---\n%s--- traced ---\n%s", plainMS, tracedMS)
	}

	if plain.Trace() != nil || plain.Metrics() != nil {
		t.Fatal("untraced run exposes observability views")
	}
	tr := traced.Trace()
	if tr == nil || tr.Len() == 0 {
		t.Fatal("traced run recorded no spans")
	}

	// At least one completed job carries a full span chain (submit, match,
	// run under the job root), every child inside the root's interval.
	chains := 0
	for _, root := range tr.Roots() {
		if root.Kind != obs.KindJob || !root.Ended() || root.Err != "" {
			continue
		}
		kinds := map[obs.Kind]bool{}
		for _, child := range tr.Children(root.ID) {
			kinds[child.Kind] = true
			if child.Start < root.Start || (child.Ended() && child.End > root.End) {
				t.Fatalf("child span %d outside its root's interval", child.ID)
			}
		}
		if kinds[obs.KindSubmit] && kinds[obs.KindMatch] && kinds[obs.KindRun] {
			chains++
		}
	}
	if chains == 0 {
		t.Fatal("no completed job has a submit+match+run span chain")
	}

	snap := traced.Metrics()
	if snap == nil {
		t.Fatal("traced run has no metrics snapshot")
	}
	stages := snap.StageLatencies()
	if len(stages) == 0 {
		t.Fatal("no stage latency histograms recorded")
	}
}

// TestShardedRunMatchesSerial is the sharding contract: WithShards(n)
// changes how matchmaking work is laid out across worker goroutines, never
// what the simulation computes — same seed, same exhibits, at any shard
// count including counts that don't divide the testbed evenly.
func TestShardedRunMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario in -short mode")
	}
	exhibits := func(r *Result) (string, string) {
		var t1, ms strings.Builder
		r.WriteTable1(&t1)
		r.WriteMilestones(&ms)
		return t1.String(), ms.String()
	}
	serial, err := RunScenario(5, 0.005, WithHorizon(8*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	serialT1, serialMS := exhibits(serial)
	for _, shards := range []int{4, 5} {
		sharded, err := RunScenario(5, 0.005, WithHorizon(8*24*time.Hour), WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		gotT1, gotMS := exhibits(sharded)
		if gotT1 != serialT1 {
			t.Fatalf("Table 1 diverged at %d shards:\n--- serial ---\n%s--- sharded ---\n%s", shards, serialT1, gotT1)
		}
		if gotMS != serialMS {
			t.Fatalf("milestones diverged at %d shards:\n--- serial ---\n%s--- sharded ---\n%s", shards, serialMS, gotMS)
		}
	}
}
