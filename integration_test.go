package grid3

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"grid3/internal/dagman"
	"grid3/internal/gram"
	"grid3/internal/gridftp"
	"grid3/internal/gsi"
)

// TestRealTCPPipeline runs a miniature Grid3 workflow over genuine
// sockets: a DAGMan DAG whose compute nodes submit to a real TCP GRAM
// gatekeeper and whose data nodes move files between two real GridFTP
// servers, all under one GSI trust fabric.
func TestRealTCPPipeline(t *testing.T) {
	now := time.Now()
	ca, err := gsi.NewCA("/CN=Integration CA", now.Add(-time.Hour), 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	user, err := ca.Issue("/OU=People/CN=Integration User", now.Add(-time.Minute), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := gsi.NewProxy(user, now, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Certificate())
	gridmap := gsi.NewGridmap()
	gridmap.Map(user.Cert.Subject, "usatlas")

	// One gatekeeper, two storage elements.
	gk := gram.NewServer(trust, gridmap, 2)
	gkAddr, err := gk.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer gk.Close()
	seSrc := gridftp.NewServer(gridftp.NewFileStore(64<<20), trust, gridmap)
	srcAddr, _ := seSrc.Serve()
	defer seSrc.Close()
	seDst := gridftp.NewServer(gridftp.NewFileStore(64<<20), trust, gridmap)
	dstAddr, _ := seDst.Serve()
	defer seDst.Close()

	gramClient, err := gram.Dial(gkAddr, proxy)
	if err != nil {
		t.Fatal(err)
	}
	defer gramClient.Close()
	src, err := gridftp.Dial(srcAddr, proxy)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := gridftp.Dial(dstAddr, proxy)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	// Seed the input at the source SE.
	input := bytes.Repeat([]byte("sft"), 100000)
	if err := src.Put("/s2/input.sft", input); err != nil {
		t.Fatal(err)
	}

	// DAG: stage-in → compute ×2 → stage-out.
	d := dagman.New()
	d.Add(&dagman.Node{Name: "stagein", Work: func(done func(error)) {
		data, err := src.Get("/s2/input.sft")
		if err != nil {
			done(err)
			return
		}
		done(dst.Put("/scratch/input.sft", data))
	}})
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("search-%d", i)
		d.Add(&dagman.Node{Name: name, Retries: 1, Work: func(done func(error)) {
			// Real GRAM submission with a short wall-clock payload. The
			// client and the DAGMan runner are both single-threaded, so
			// the wait is synchronous (each payload is milliseconds).
			id, err := gramClient.Submit("/bin/search", 15*time.Millisecond)
			if err != nil {
				done(err)
				return
			}
			st, err := gramClient.WaitDone(id, 5*time.Second)
			if err != nil {
				done(err)
				return
			}
			if st != "DONE" {
				done(fmt.Errorf("job state %s", st))
				return
			}
			done(nil)
		}})
		d.AddEdge("stagein", name)
	}
	d.Add(&dagman.Node{Name: "stageout", Work: func(done func(error)) {
		done(dst.Put("/results/candidates.dat", []byte("pulsar-candidates")))
	}})
	d.AddEdge("search-0", "stageout")
	d.AddEdge("search-1", "stageout")

	resultCh := make(chan dagman.Result, 1)
	runner := dagman.NewRunner(d)
	if err := runner.Run(func(r dagman.Result) { resultCh <- r }); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-resultCh:
		if !r.Succeeded() {
			t.Fatalf("pipeline failed: %+v", r)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("pipeline timed out")
	}

	// The staged product exists with intact content.
	got, err := dst.Get("/scratch/input.sft")
	if err != nil || !bytes.Equal(got, input) {
		t.Fatalf("staged input corrupted: %v", err)
	}
	if _, err := dst.Get("/results/candidates.dat"); err != nil {
		t.Fatal("results missing")
	}
}

// TestRealTCPTwoSessions pins the server's cross-session semantics: jobs
// are global to the gatekeeper, so a second authenticated session can
// poll jobs submitted by the first (how the paper's operators inspected
// stuck jobmanagers).
func TestRealTCPTwoSessions(t *testing.T) {
	now := time.Now()
	ca, _ := gsi.NewCA("/CN=CA2", now.Add(-time.Hour), 24*time.Hour)
	user, _ := ca.Issue("/CN=u", now.Add(-time.Minute), 12*time.Hour)
	gm := gsi.NewGridmap()
	gm.Map("/CN=u", "ivdgl")
	gk := gram.NewServer(gsi.NewTrustStore(ca.Certificate()), gm, 4)
	addr, err := gk.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer gk.Close()

	c1, err := gram.Dial(addr, user)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := gram.Dial(addr, user)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	id1, _ := c1.Submit("/bin/a", 10*time.Millisecond)
	id2, _ := c2.Submit("/bin/b", 10*time.Millisecond)
	// Cross-session visibility: jobs are server-global.
	if st, err := c2.WaitDone(id1, 2*time.Second); err != nil || st != "DONE" {
		t.Fatalf("cross-session poll: %s, %v", st, err)
	}
	if st, err := c1.WaitDone(id2, 2*time.Second); err != nil || st != "DONE" {
		t.Fatalf("cross-session poll: %s, %v", st, err)
	}
}
